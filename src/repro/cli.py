"""Command-line interface.

::

    spp-minimize minimize circuit.pla --method exact
    spp-minimize minimize circuit.pla --method heuristic -k 2 --output 3
    spp-minimize benchmarks --list
    spp-minimize benchmarks --dump adr4 > adr4.pla
    spp-minimize tables table1 --full --jobs 8
    spp-minimize bench --json BENCH_local.json --baseline benchmarks/baseline.json
    spp-minimize batch adr4 life circuit.pla --jobs 4 --timeout 30 \\
        --cache-dir .spp-cache --resume
    spp-minimize serve --port 8351 --threads 4 --queue-capacity 8
    spp-minimize cluster --workers 4 --cache-dir .spp-cache
    spp-minimize loadtest --cluster 4 --compare-single --out results
    spp-minimize fuzz --seed 1 --budget 60

(`python -m repro ...` is equivalent.)
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.bench import harness
from repro.bench.paper_data import TABLE1
from repro.bench.suite import BENCHMARKS, get_benchmark
from repro.boolfunc.function import BoolFunc, MultiBoolFunc
from repro.boolfunc.pla import parse_pla_file, write_pla
from repro.core.cex import cex_of
from repro.errors import ReproError
from repro.minimize.bounded import minimize_spp_bounded
from repro.minimize.exact import SppResult, minimize_spp
from repro.minimize.heuristic import minimize_spp_k
from repro.minimize.sp import minimize_sp
from repro.verify import VerificationReport, verify_form

__all__ = ["main"]


def _fail_verification(label: str, report: VerificationReport) -> None:
    """Print a counterexample-bearing failure line and exit with 2."""
    details = []
    if report.uncovered_on_points:
        points = report.uncovered_on_points
        details.append(f"misses on-set point {points[0]:#x}"
                       + (f" (+{len(points) - 1} more)" if len(points) > 1 else ""))
    if report.covered_off_points:
        points = report.covered_off_points
        details.append(f"covers off-set point {points[0]:#x}"
                       + (f" (+{len(points) - 1} more)" if len(points) > 1 else ""))
    if report.truncated:
        details.append("counterexample scan truncated")
    print(f"{label}: VERIFICATION FAILED: {'; '.join(details)}", file=sys.stderr)
    raise SystemExit(2)


def _minimize_one(fo: BoolFunc, label: str, args: argparse.Namespace):
    if args.method == "aox":
        from repro.minimize.aox import minimize_aox

        aox = minimize_aox(fo, covering=args.covering)
        print(f"{label}: AOX {aox.num_literals} literals "
              f"({aox.tried} corrections tried, {aox.seconds:.2f}s)")
        report = verify_form(aox.form, fo)
        if not report:
            _fail_verification(label, report)
        if args.show:
            print("   ", aox.form)
        return None  # AOX forms are not exportable SPP forms
    if args.method == "sp":
        sp = minimize_sp(fo, covering=args.covering)
        print(f"{label}: SP  {sp.num_literals} literals, {sp.num_products} products, "
              f"{sp.num_primes} primes, {sp.seconds:.2f}s")
        form = sp.form
    else:
        if args.method == "exact":
            result: SppResult = minimize_spp(
                fo,
                backend=args.backend,
                covering=args.covering,
                max_pseudoproducts=args.max_pseudoproducts,
                on_limit="stop",
            )
        elif args.method == "heuristic":
            result = minimize_spp_k(
                fo, args.k, backend=args.backend, covering=args.covering
            )
        else:  # bounded
            result = minimize_spp_bounded(
                fo, args.bound, backend=args.backend, covering=args.covering
            )
        print(
            f"{label}: SPP {result.num_literals} literals, "
            f"{result.num_pseudoproducts} pseudoproducts, "
            f"{result.num_candidates} candidates, {result.seconds:.2f}s"
        )
        form = result.form
    report = verify_form(form, fo)
    if not report:
        _fail_verification(label, report)
    if args.show:
        for pc in form.pseudoproducts:
            print("   ", cex_of(pc))
    return form


def _cmd_minimize(args: argparse.Namespace) -> None:
    if args.file in BENCHMARKS:
        func: MultiBoolFunc = get_benchmark(args.file)
    else:
        func = parse_pla_file(args.file)
    if args.method == "multi":
        _minimize_multi(func, args)
        return
    forms: dict[str, object] = {}
    outputs = [args.output] if args.output is not None else range(func.num_outputs)
    for o in outputs:
        fo = func[o]
        if not fo.on_set:
            print(f"output {o}: constant 0, skipped")
            continue
        form = _minimize_one(fo, f"output {o}", args)
        if form is not None:
            forms[f"f{o}"] = form
    _export(forms, args)


def _minimize_multi(func: MultiBoolFunc, args: argparse.Namespace) -> None:
    from repro.minimize.multi import minimize_spp_multi

    result = minimize_spp_multi(
        func,
        backend=args.backend,
        covering=args.covering,
        max_pseudoproducts=args.max_pseudoproducts,
    )
    print(
        f"joint: {result.shared_literals} shared literals over "
        f"{len(result.shared_pseudoproducts)} pseudoproducts "
        f"({result.total_output_literals} if each output paid separately), "
        f"{result.seconds:.2f}s"
    )
    forms = {}
    for o, (form, fo) in enumerate(zip(result.forms, func.outputs)):
        report = verify_form(form, fo)
        if not report:
            _fail_verification(f"output {o}", report)
        forms[f"f{o}"] = form
        if args.show:
            print(f"output {o}:")
            for pc in form.pseudoproducts:
                print("   ", cex_of(pc))
    _export(forms, args)


def _export(forms: dict[str, object], args: argparse.Namespace) -> None:
    if not forms:
        return
    if args.verilog:
        from repro.export.verilog import spp_to_verilog

        with open(args.verilog, "w", encoding="ascii") as handle:
            handle.write(spp_to_verilog(forms, module=args.module))
        print(f"wrote Verilog to {args.verilog}")
    if args.blif:
        from repro.export.blif import spp_to_blif

        with open(args.blif, "w", encoding="ascii") as handle:
            for name, form in forms.items():
                handle.write(spp_to_blif(form, model=name, output_name=name))
        print(f"wrote BLIF to {args.blif}")


def _cmd_benchmarks(args: argparse.Namespace) -> None:
    if args.dump:
        print(write_pla(get_benchmark(args.dump)), end="")
        return
    print(f"{'name':<10} {'in':>3} {'out':>4}  surrogate  notes")
    for name in sorted(BENCHMARKS):
        spec = BENCHMARKS[name]
        flag = "yes" if spec.surrogate else "no"
        print(f"{name:<10} {spec.n_inputs:>3} {spec.n_outputs:>4}  {flag:<9}  {spec.notes}")


def _tables_cache(args: argparse.Namespace):
    if getattr(args, "cache_dir", None) is None:
        return None
    from repro.engine import ResultCache

    return ResultCache(cache_dir=args.cache_dir)


def _tables_perf_entries(table: str, items) -> list:
    """Convert a table run's measurements into BENCH_*.json entries, so
    full regenerations feed the same trajectory as ``bench``."""
    from repro.bench.perfjson import BenchEntry

    def one(name: str, seconds: float, meta: dict) -> BenchEntry:
        return BenchEntry(name, "tables", seconds, seconds, 1, meta)

    entries: list[BenchEntry] = []
    if table == "table1":
        for m in items:
            entries.append(one(f"tables/table1/{m.function}/sp",
                               m.seconds_sp, {"literals": m.sp_literals}))
            spp_meta = {"literals": m.spp_literals}
            if m.covering_stats is not None:
                spp_meta["reduction"] = m.covering_stats
            entries.append(one(f"tables/table1/{m.function}/spp",
                               m.seconds_spp, spp_meta))
    elif table == "table2":
        for m in items:
            label = f"tables/table2/{m.function}[{m.output}]"
            entries.append(one(f"{label}/alg2", m.seconds_alg2,
                               {"comparisons": m.comparisons_alg2}))
            if m.seconds_naive is not None:
                entries.append(one(f"{label}/naive", m.seconds_naive, {}))
    elif table == "table3":
        for m in items:
            entries.append(one(f"tables/table3/{m.function}/spp0",
                               m.spp0_seconds, {"literals": m.spp0_literals}))
            if m.spp_seconds is not None:
                entries.append(one(f"tables/table3/{m.function}/spp",
                                   m.spp_seconds, {"literals": m.spp_literals}))
    else:  # fig34
        for p in items:
            entries.append(one(f"tables/fig34/{p.function}/k{p.k}",
                               p.seconds, {"literals": p.literals}))
    return entries


def _cmd_tables(args: argparse.Namespace) -> None:
    parallel = args.jobs != 1
    cache = _tables_cache(args)
    delta_index = None
    if args.table == "table1":
        if args.quick:
            names = harness.QUICK_TABLE1
        else:
            names = [row.function for row in TABLE1]
        cap = 200_000 if args.quick else None
        if parallel:
            from repro.delta import DeltaIndex

            delta_index = DeltaIndex()
            rows = harness.run_table1_rows(
                names, max_pseudoproducts=cap, workers=args.jobs,
                timeout=args.timeout, cache=cache, delta_index=delta_index,
            )
        else:
            rows = [harness.run_table1_row(n, max_pseudoproducts=cap) for n in names]
        print(harness.render_table1(rows))
        items = rows
    elif args.table == "table2":
        pairs = harness.QUICK_TABLE2 if args.quick else harness.FULL_TABLE2
        cap = 200_000 if args.quick else None
        if parallel:
            rows = harness.run_table2_rows(
                pairs, workers=args.jobs, max_pseudoproducts=cap
            )
        else:
            rows = [
                harness.run_table2_row(n, o, max_pseudoproducts=cap) for n, o in pairs
            ]
        print(harness.render_table2(rows))
        items = rows
    elif args.table == "table3":
        names = harness.QUICK_TABLE3 if args.quick else harness.FULL_TABLE3
        budget = 200_000 if args.quick else None
        if parallel:
            rows3 = harness.run_table3_rows(
                names, exact_budget=budget, workers=args.jobs,
                timeout=args.timeout, cache=cache,
            )
        else:
            rows3 = [harness.run_table3_row(n, exact_budget=budget) for n in names]
        print(harness.render_table3(rows3))
        items = rows3
    else:  # fig34
        names = harness.QUICK_FIG34 if args.quick else harness.FULL_FIG34
        if parallel:
            points = harness.run_fig34_sweeps(
                names, workers=args.jobs, timeout=args.timeout, cache=cache
            )
        else:
            points = []
            for name in names:
                points.extend(harness.run_spp_k_sweep(name))
        print(harness.render_fig34(points))
        items = points
    if args.perf_json:
        from repro.bench.perfjson import make_report, write_report

        entries = _tables_perf_entries(args.table, items)
        meta = None
        if delta_index is not None:
            stats = delta_index.stats()
            meta = {
                "warm_hits": stats["warm_hits"],
                "delta_fallbacks": stats["fallbacks"],
            }
        write_report(
            args.perf_json, make_report(f"tables-{args.table}", entries, meta=meta)
        )
        print(f"wrote {args.perf_json} ({len(entries)} entries)")


def _cmd_perf_bench(args: argparse.Namespace) -> None:
    from repro.bench import perfjson

    tag = args.tag
    if tag is None:
        base = os.path.basename(args.json)
        if base.startswith("BENCH_") and base.endswith(".json"):
            tag = base[len("BENCH_"):-len(".json")]
        else:
            tag = "local"

    def show(entry) -> None:
        print(f"{entry.name:<30} best {entry.best * 1e3:9.2f}ms  "
              f"mean {entry.mean * 1e3:9.2f}ms  (x{entry.repeats})", flush=True)

    profile_dir = None
    if args.profile:
        profile_dir = os.path.join("results", f"profile_{tag}")

    entries = perfjson.run_perf_suite(
        repeats=args.repeats,
        e2e_repeats=args.e2e_repeats,
        only=args.only,
        progress=show,
        profile_dir=profile_dir,
    )
    if profile_dir is not None:
        print(f"wrote per-entry cProfile dumps (top-20 cumulative) to "
              f"{profile_dir}/")
    report = perfjson.make_report(tag, entries)
    perfjson.write_report(args.json, report)
    print(f"wrote {args.json} ({len(entries)} entries)")
    if args.baseline:
        baseline = perfjson.load_report(args.baseline)
        rows = perfjson.compare_reports(report, baseline, args.max_regression)
        regressed = [r for r in rows if r["regressed"]]
        for r in rows:
            flag = "REGRESSED" if r["regressed"] else "ok"
            print(f"{r['name']:<30} {r['current'] * 1e3:9.2f}ms vs "
                  f"{r['baseline'] * 1e3:9.2f}ms  x{r['ratio']:5.2f}  {flag}")
        if regressed:
            print(
                f"bench: {len(regressed)} entries regressed more than "
                f"{args.max_regression}x vs {args.baseline}",
                file=sys.stderr,
            )
            raise SystemExit(1)


def _batch_jobs(args: argparse.Namespace) -> list:
    """Expand PLA paths / benchmark names into one Job per live output."""
    from repro.engine import Job

    jobs = []
    for target in args.targets:
        if target in BENCHMARKS:
            func: MultiBoolFunc = get_benchmark(target)
            name = target
        else:
            func = parse_pla_file(target)
            name = target.rsplit("/", 1)[-1]
        for o, fo in enumerate(func.outputs):
            if not fo.on_set:
                continue
            jobs.append(
                Job(
                    fo,
                    method=args.method,
                    k=args.k,
                    bound=args.bound,
                    covering=args.covering,
                    backend=args.backend,
                    max_pseudoproducts=args.max_pseudoproducts,
                    label=f"{name}[{o}]",
                )
            )
    return jobs


def _cmd_batch(args: argparse.Namespace) -> None:
    from repro.engine import Manifest, ResultCache, run_batch

    jobs = _batch_jobs(args)
    if not jobs:
        print("nothing to do: every requested output is constant 0")
        return
    cache = ResultCache(cache_dir=args.cache_dir)
    manifest = None
    manifest_dir = args.manifest_dir
    if manifest_dir is None and args.cache_dir is not None:
        manifest_dir = str(args.cache_dir) + "/manifest"
    if manifest_dir is not None:
        manifest = Manifest(manifest_dir)
    if args.resume and manifest is None:
        print("batch: --resume needs --manifest-dir or --cache-dir", file=sys.stderr)
        raise SystemExit(2)

    def show(outcome) -> None:
        label = outcome.job.display_label
        if not outcome.ok:
            verdict = "QUARANTINED" if outcome.source == "quarantined" else "FAILED"
            print(f"{label:<24} {verdict} after {len(outcome.attempts)} attempts")
            return
        record = outcome.record
        rung = record["rung"] + (" (degraded)" if record.get("degraded") else "")
        print(
            f"{label:<24} {rung:<22} {record['literals']:>5} literals "
            f"{record['pseudoproducts']:>4} pps  {record['seconds']:>7.2f}s  "
            f"[{outcome.source}]"
        )

    result = run_batch(
        jobs,
        workers=args.jobs,
        timeout=args.timeout,
        memory_mb=args.memory_mb,
        cache=cache,
        manifest=manifest,
        resume=args.resume,
        progress=show,
        crash_cap=args.crash_cap,
        retry_backoff=args.retry_backoff,
    )
    print(f"batch: {result.summary()}")
    print(f"cache: {cache.stats.summary()}")
    if not result.ok:
        raise SystemExit(1)


def _cmd_serve(args: argparse.Namespace) -> None:
    from repro.serve import MinimizeService, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        threads=args.threads,
        queue_capacity=args.queue_capacity,
        default_timeout=args.default_timeout,
        default_budget=args.default_budget,
        memory_soft_mb=args.memory_soft_mb,
        memory_hard_mb=args.memory_hard_mb,
        cache_entries=args.cache_entries,
        cache_dir=args.cache_dir,
        max_disk_entries=args.max_disk_entries,
        audit_rate=args.audit_rate,
        shadow_rate=args.shadow_rate,
        manifest_dir=args.manifest_dir,
        drain_grace=args.drain_grace,
        parent_pid=args.parent_pid,
        delta_entries=args.delta_entries,
        delta_max_edit=args.delta_max_edit,
    )
    service = MinimizeService(config)
    host, port = service.start()
    service.install_signal_handlers()
    print(f"serving on http://{host}:{port}  "
          f"({config.threads} workers, queue {config.queue_capacity}); "
          "SIGTERM/SIGINT drains gracefully", flush=True)
    try:
        service.wait_drained()
    except KeyboardInterrupt:  # second ^C while draining: just leave
        pass
    print("drained, exiting", flush=True)


def _cmd_cluster(args: argparse.Namespace) -> None:
    from repro.cluster import ClusterConfig, ClusterCoordinator

    config = ClusterConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_workers=args.max_workers,
        replicas=args.replicas,
        failover_attempts=args.failover_attempts,
        hedge=not args.no_hedge,
        hedge_after=args.hedge_after,
        retry_budget_ratio=args.retry_budget_ratio,
        retry_budget_cap=args.retry_budget_cap,
        health_interval=args.health_interval,
        worker_threads=args.threads,
        worker_queue_capacity=args.queue_capacity,
        default_timeout=args.default_timeout,
        default_budget=args.default_budget,
        cache_entries=args.cache_entries,
        cache_dir=args.cache_dir,
        max_disk_entries=args.max_disk_entries,
        audit_rate=args.audit_rate,
        shadow_rate=args.shadow_rate,
    )
    cluster = ClusterCoordinator(config)
    host, port = cluster.start()
    cluster.install_signal_handlers()
    ports = [state.proc.port for state in cluster._workers.values()]
    print(f"cluster on http://{host}:{port}  "
          f"({config.workers} workers on ports {ports}); "
          "SIGTERM/SIGINT drains gracefully", flush=True)
    try:
        cluster.wait_drained()
    except KeyboardInterrupt:  # second ^C while draining: just leave
        pass
    print("drained, exiting", flush=True)


def _parse_stages(spec: str, mode: str):
    """``"4x10,8x10"`` → closed stages; open mode reads rate instead."""
    from repro.loadgen import Stage

    stages = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        try:
            load_part, duration_part = chunk.split("x", 1)
            load = float(load_part)
            duration = float(duration_part)
        except ValueError:
            raise SystemExit(
                f"loadtest: bad stage {chunk!r} (want LOADxSECONDS)"
            ) from None
        if mode == "open":
            stages.append(Stage(duration, clients=64, rate=load))
        else:
            stages.append(Stage(duration, clients=int(load)))
    if not stages:
        raise SystemExit("loadtest: no stages given")
    return stages


def _cmd_loadtest_summarize(args: argparse.Namespace) -> None:
    """``loadtest --summarize``: aggregate repeated report JSONs."""
    import json
    from pathlib import Path

    from repro.loadgen import render_summary_markdown, summarize

    docs = []
    for path in args.summarize:
        try:
            docs.append(json.loads(Path(path).read_text()))
        except (OSError, ValueError) as exc:
            raise SystemExit(f"loadtest: cannot read {path}: {exc}") from None
    try:
        summary = summarize(docs)
    except ValueError as exc:
        raise SystemExit(f"loadtest: {exc}") from None
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    json_path = out / f"{args.name}-summary.json"
    json_path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    markdown = render_summary_markdown(summary)
    md_path = out / f"{args.name}-summary.md"
    md_path.write_text(markdown + "\n")
    print(markdown, flush=True)
    print(f"wrote {json_path} and {md_path}", flush=True)


def _parse_chaos_stall(spec: str) -> tuple[float, float]:
    """``P:SECONDS`` (e.g. ``0.05:0.4``) for --chaos-stall."""
    try:
        p_text, _, seconds_text = spec.partition(":")
        p = float(p_text)
        seconds = float(seconds_text)
        if not 0.0 <= p <= 1.0 or seconds < 0:
            raise ValueError
    except ValueError:
        raise SystemExit(
            f"loadtest: bad --chaos-stall {spec!r} (want P:SECONDS, "
            "P within [0,1])"
        ) from None
    return p, seconds


def _cmd_loadtest(args: argparse.Namespace) -> None:
    import contextlib
    import tempfile

    from repro.cluster import ClusterConfig, ClusterCoordinator, WorkerProcess, free_port
    from repro.loadgen import ChaosAction, ChaosScenario, LoadDriver, Workload, write_report

    if args.summarize:
        _cmd_loadtest_summarize(args)
        return
    if args.service_time is not None:
        # Deterministic per-request service time via the fault plan —
        # the repo's standard way to emulate fixed compute cost (see
        # docs/SERVING.md).  Exported so spawned servers inherit it.
        from repro.faults import FaultPlan, FaultRule, install

        install(FaultPlan([FaultRule(site="serve.request", kind="slow",
                                     arg=args.service_time, times=None)]))
    if args.chaos_stall is not None:
        # Probabilistic proxy stalls on the launched cluster's wire
        # path; composes with --service-time (both plans merge).
        from repro.faults import FaultPlan, FaultRule, active, install

        p, seconds = _parse_chaos_stall(args.chaos_stall)
        plan = active() or FaultPlan(seed=args.chaos_seed)
        plan.rules.append(FaultRule(
            site="cluster.proxy.stall", kind="slow",
            p=p, times=None, arg=seconds,
        ))
        plan.seed = args.chaos_seed
        install(plan)

    stages = _parse_stages(args.stages, args.mode)
    workload = Workload(
        seed=args.seed,
        small_pool=args.small_pool,
        large_pool=args.large_pool,
        large_fraction=args.large_fraction,
        timeout=args.request_timeout,
        max_rung=None if args.max_rung == "none" else args.max_rung,
        dup_rate=args.dup_rate,
    )
    serve_args = [
        "--threads", str(args.threads),
        "--queue-capacity", str(args.queue_capacity),
        "--default-timeout", str(args.request_timeout),
    ]

    def show(line: str) -> None:
        print(f"  {line}", flush=True)

    results = {}
    with contextlib.ExitStack() as stack:
        tmp = None
        if args.cache_dir is None and (args.cluster or args.compare_single):
            tmp = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="spp-loadtest-")
            )
        cache_dir = args.cache_dir or tmp

        def drive(name: str, host: str, port: int, target: str) -> None:
            print(f"{name}: driving http://{host}:{port}", flush=True)
            driver = LoadDriver(
                host, port, workload,
                request_timeout=args.request_timeout + 30.0,
                deadline=args.deadline,
                progress=show,
            )
            results[name] = driver.run(
                stages, target=target, warmup_repeats=args.warmup_repeats
            )

        if args.url:
            from urllib.parse import urlsplit

            parts = urlsplit(args.url)
            drive("target", parts.hostname or "127.0.0.1",
                  parts.port or 80, args.url)
        if args.compare_single:
            single = WorkerProcess(
                "single", free_port(),
                serve_args=serve_args + (
                    ["--cache-dir", f"{cache_dir}/single"] if cache_dir else []
                ),
            )
            single.start(wait=True)
            stack.callback(single.stop)
            drive("single", single.host, single.port,
                  f"single-process serve (threads={args.threads})")
        if args.cluster:
            cluster = ClusterCoordinator(ClusterConfig(
                port=0,
                workers=args.cluster,
                max_workers=args.max_workers,
                worker_threads=args.threads,
                worker_queue_capacity=args.queue_capacity,
                default_timeout=args.request_timeout,
                hedge=not args.no_hedge,
                hedge_after=args.hedge_after,
                cache_dir=f"{cache_dir}/cluster" if cache_dir else None,
            ))
            host, port = cluster.start()
            stack.callback(cluster.drain, 2.0)
            if args.chaos_sigstop:
                actions = [
                    ChaosAction.parse(spec, kind="sigstop")
                    for spec in args.chaos_sigstop
                ]
                procs = {
                    name: state.proc
                    for name, state in cluster._workers.items()
                }
                scenario = ChaosScenario(procs, actions)
                stack.enter_context(scenario)
            drive(f"cluster-{args.cluster}", host, port,
                  f"{args.cluster}-worker cluster (threads={args.threads} each)")

    if not results:
        raise SystemExit(
            "loadtest: nothing to drive (use --url, --cluster N and/or "
            "--compare-single)"
        )
    notes = list(args.note or [])
    if args.service_time is not None:
        notes.append(
            f"Deterministic per-request service time of {args.service_time}s "
            "injected via the fault plan (site serve.request) on every "
            "spawned server — the repo's standard emulation of fixed "
            "compute cost for fabric-scaling measurements."
        )
    single_result = results.get("single")
    cluster_result = next(
        (r for k, r in results.items() if k.startswith("cluster-")), None
    )
    if single_result and cluster_result:
        speedup = (
            cluster_result.peak_throughput_rps
            / max(single_result.peak_throughput_rps, 1e-9)
        )
        notes.append(
            f"Peak sustained throughput: cluster "
            f"{cluster_result.peak_throughput_rps:.1f} rps vs single-process "
            f"{single_result.peak_throughput_rps:.1f} rps = "
            f"{speedup:.2f}x."
        )
        per_stage = []
        for s_stage, c_stage in zip(single_result.stages,
                                    cluster_result.stages):
            if s_stage.stage == c_stage.stage and s_stage.throughput_rps:
                per_stage.append(
                    (s_stage.stage,
                     c_stage.throughput_rps / s_stage.throughput_rps)
                )
        if per_stage:
            rendered = ", ".join(
                f"{spec['rate'] or spec['clients']:g}"
                f"{'rps' if spec['rate'] else ' clients'}: {ratio:.2f}x"
                for spec, ratio in per_stage
            )
            notes.append(
                "Matched-offered-load speedups (same stage driven at both "
                f"targets): {rendered}."
            )
        print(f"speedup: {speedup:.2f}x peak; matched-load "
              f"{max((r for _, r in per_stage), default=speedup):.2f}x",
              flush=True)
    json_path, md_path = write_report(
        args.out, args.name, args.title, results, notes
    )
    print(f"wrote {json_path} and {md_path}", flush=True)


def _cmd_fuzz(args: argparse.Namespace) -> None:
    from repro.errors import IntegrityError
    from repro.fuzz import replay_artifact, run_fuzz

    if args.replay:
        failures = replay_artifact(args.replay)
        if failures:
            for failure in failures:
                print(f"[{failure.check}] {failure.rung}: {failure.message}",
                      file=sys.stderr)
            raise IntegrityError(
                f"replay reproduced {len(failures)} failure(s) "
                f"from {args.replay}",
                detail={"failures": [f.check for f in failures]},
            )
        print(f"replay clean: {args.replay}")
        return

    families = args.families.split(",") if args.families else None
    report = run_fuzz(
        seed=args.seed,
        budget=args.budget,
        max_trials=args.trials,
        n_min=args.n_min,
        n_max=args.n_max,
        families=families,
        plant_bug=args.plant_bug,
        out_dir=args.out,
        rung_budget=args.rung_budget,
        log=print,
    )
    mix = ", ".join(f"{k}={v}" for k, v in sorted(report.family_counts.items()))
    print(f"fuzz: {report.trials} trials in {report.elapsed_seconds:.1f}s "
          f"(seed {report.seed}; {mix})")
    if report.failures:
        raise IntegrityError(
            f"{len(report.failures)} failing trial(s); "
            f"replayable artifacts under {args.out}",
            detail={"artifacts": [f["path"] for f in report.failures]},
        )
    print("fuzz: all checks passed")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="spp-minimize",
        description="SPP (Sum of Pseudoproducts) logic minimization — "
        "reproduction of Ciriani, DAC 2001.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_min = sub.add_parser("minimize", help="minimize a PLA file or named benchmark")
    p_min.add_argument("file", help="PLA path or registered benchmark name")
    p_min.add_argument("--output", type=int, default=None, help="single output index")
    p_min.add_argument(
        "--method",
        choices=["exact", "heuristic", "sp", "bounded", "multi", "aox"],
        default="exact",
    )
    p_min.add_argument("-k", type=int, default=0, help="heuristic descent depth")
    p_min.add_argument("--bound", type=int, default=2, help="factor width bound")
    p_min.add_argument("--covering", choices=["greedy", "exact", "auto"], default="greedy")
    p_min.add_argument("--backend", choices=["index", "trie"], default="index")
    p_min.add_argument("--max-pseudoproducts", type=int, default=None)
    p_min.add_argument("--show", action="store_true", help="print the expressions")
    p_min.add_argument("--verilog", metavar="FILE", help="export a Verilog module")
    p_min.add_argument("--blif", metavar="FILE", help="export BLIF models")
    p_min.add_argument("--module", default="spp", help="Verilog module name")
    p_min.set_defaults(handler=_cmd_minimize)

    p_bench = sub.add_parser("benchmarks", help="list or dump benchmark functions")
    p_bench.add_argument("--dump", metavar="NAME", help="write a benchmark as PLA")
    p_bench.set_defaults(handler=_cmd_benchmarks)

    p_tab = sub.add_parser("tables", help="regenerate a paper table/figure")
    p_tab.add_argument("table", choices=["table1", "table2", "table3", "fig34"])
    mode = p_tab.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick", dest="quick", action="store_true", default=True,
        help="scaled-down instances and capped budgets (default)",
    )
    mode.add_argument(
        "--full", dest="quick", action="store_false",
        help="the paper's full row lists, uncapped (CPU-hours)",
    )
    p_tab.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="route rows through the batch engine on N workers (0 = inline engine)",
    )
    p_tab.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-attempt deadline for engine-routed rows")
    p_tab.add_argument("--cache-dir", default=None,
                       help="persistent result cache for engine-routed rows")
    p_tab.add_argument("--perf-json", metavar="FILE", default=None,
                       help="also record per-row timings as a BENCH_*.json "
                       "report (repro-bench/1 schema)")
    p_tab.set_defaults(handler=_cmd_tables)

    p_perf = sub.add_parser(
        "bench",
        help="run the pinned perf suite and emit a BENCH_*.json report",
        description="Time the pinned micro/meso suite (EPPP generation, "
        "covering build, covering solve, end-to-end table rows) and write "
        "a machine-readable repro-bench/1 report with an environment "
        "fingerprint.  With --baseline, compare entry by entry and exit 1 "
        "if anything regressed beyond --max-regression.",
    )
    p_perf.add_argument("--json", required=True, metavar="FILE",
                        help="output report path (BENCH_<tag>.json)")
    p_perf.add_argument("--tag", default=None,
                        help="report tag (default: derived from the filename)")
    p_perf.add_argument("--repeats", type=int, default=5, metavar="N",
                        help="micro-benchmark repetitions; best-of-N is "
                        "recorded (default 5)")
    p_perf.add_argument("--e2e-repeats", type=int, default=1, metavar="N",
                        help="end-to-end row repetitions (default 1)")
    p_perf.add_argument("--only", default=None, metavar="PREFIX",
                        help="run only entries whose name starts with PREFIX")
    p_perf.add_argument("--profile", action="store_true",
                        help="additionally run each entry once under "
                        "cProfile and dump its top-20 cumulative functions "
                        "to results/profile_<tag>/<entry>.txt")
    p_perf.add_argument("--baseline", default=None, metavar="FILE",
                        help="compare against a baseline report")
    p_perf.add_argument("--max-regression", type=float, default=2.5,
                        metavar="X", help="fail when an entry is more than "
                        "X times slower than the baseline (default 2.5)")
    p_perf.set_defaults(handler=_cmd_perf_bench)

    p_batch = sub.add_parser(
        "batch",
        help="minimize many functions in parallel through the batch engine",
        description="Fan the outputs of PLA files and/or named benchmarks "
        "across a worker pool, with result caching, per-attempt deadlines "
        "and the exact→bounded→heuristic→SP degradation ladder.",
    )
    p_batch.add_argument("targets", nargs="+",
                         help="PLA paths and/or registered benchmark names")
    p_batch.add_argument("--jobs", type=int, default=os.cpu_count() or 1,
                         metavar="N", help="worker processes (0 = run inline)")
    p_batch.add_argument("--timeout", type=float, default=None, metavar="S",
                         help="per-attempt deadline before degrading a rung")
    p_batch.add_argument("--memory-mb", type=int, default=None, metavar="MB",
                         help="per-attempt address-space budget")
    p_batch.add_argument("--cache-dir", default=None,
                         help="content-addressed result cache directory")
    p_batch.add_argument("--manifest-dir", default=None,
                         help="batch manifest directory (default: CACHE_DIR/manifest)")
    p_batch.add_argument("--resume", action="store_true",
                         help="skip jobs already completed in the manifest")
    p_batch.add_argument("--crash-cap", type=int, default=3, metavar="N",
                         help="attributed worker crashes before a job is "
                         "quarantined (default 3)")
    p_batch.add_argument("--retry-backoff", type=float, default=0.1, metavar="S",
                         help="base of the capped exponential crash-retry "
                         "backoff (default 0.1s)")
    p_batch.add_argument(
        "--method", choices=["exact", "heuristic", "bounded", "sp"], default="exact"
    )
    p_batch.add_argument("-k", type=int, default=0, help="heuristic descent depth")
    p_batch.add_argument("--bound", type=int, default=2, help="factor width bound")
    p_batch.add_argument("--covering", choices=["greedy", "exact", "auto"],
                         default="greedy")
    p_batch.add_argument("--backend", choices=["index", "trie"], default="index")
    p_batch.add_argument("--max-pseudoproducts", type=int, default=None)
    p_batch.set_defaults(handler=_cmd_batch)

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived HTTP/JSON minimization service",
        description="Front the batch engine with a threaded HTTP service: "
        "bounded admission with load shedding (429 + Retry-After), "
        "per-request cooperative budgets, a per-rung circuit breaker, a "
        "memory watchdog, /healthz + /readyz probes, and graceful "
        "SIGTERM drain.",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8351,
                         help="listen port (0 = ephemeral; default 8351)")
    p_serve.add_argument("--threads", type=int, default=4, metavar="N",
                         help="concurrent minimizations (default 4)")
    p_serve.add_argument("--queue-capacity", type=int, default=8, metavar="N",
                         help="waiting-room size beyond the active slots; "
                         "requests past it are shed (default 8)")
    p_serve.add_argument("--default-timeout", type=float, default=5.0,
                         metavar="S", help="per-attempt rung deadline when "
                         "the request sets none (default 5s)")
    p_serve.add_argument("--default-budget", type=float, default=30.0,
                         metavar="S", help="overall request budget when the "
                         "request sets none (default 30s)")
    p_serve.add_argument("--memory-soft-mb", type=float, default=None,
                         metavar="MB", help="RSS soft ceiling: shrink the "
                         "result cache when exceeded")
    p_serve.add_argument("--memory-hard-mb", type=float, default=None,
                         metavar="MB", help="RSS hard ceiling: shed all new "
                         "requests until RSS recedes")
    p_serve.add_argument("--cache-entries", type=int, default=1024,
                         metavar="N", help="in-memory result cache capacity "
                         "(default 1024)")
    p_serve.add_argument("--cache-dir", default=None,
                         help="persistent result cache directory")
    p_serve.add_argument("--max-disk-entries", type=int, default=None,
                         metavar="N", help="cap on disk cache entries; "
                         "oldest are pruned under a cross-process lock "
                         "(default: unbounded)")
    p_serve.add_argument("--audit-rate", type=int, default=16, metavar="N",
                         help="verify-on-read: re-verify every Nth disk-cache "
                         "load against its spec (0 disables sampling; "
                         "salt-stale records are always audited; default 16)")
    p_serve.add_argument("--shadow-rate", type=int, default=8, metavar="N",
                         help="shadow-verify every Nth response off the hot "
                         "path (0 disables; default 8)")
    p_serve.add_argument("--manifest-dir", default=None,
                         help="journal-backed manifest directory")
    p_serve.add_argument("--drain-grace", type=float, default=10.0,
                         metavar="S", help="SIGTERM grace window before "
                         "in-flight requests are cancelled (default 10s)")
    p_serve.add_argument("--parent-pid", type=int, default=None, metavar="PID",
                         help="drain and exit if this process disappears "
                         "(used by the cluster coordinator)")
    p_serve.add_argument("--delta-entries", type=int, default=64, metavar="N",
                         help="near-duplicate context index capacity; "
                         "0 disables the warm path (default 64)")
    p_serve.add_argument("--delta-max-edit", type=int, default=8, metavar="K",
                         help="largest on-set edit (symmetric difference) "
                         "served warm from the delta index (default 8)")
    p_serve.set_defaults(handler=_cmd_serve)

    p_cluster = sub.add_parser(
        "cluster",
        help="run a sharded multi-process cluster of minimization services",
        description="Fork N worker processes each running the serve stack "
        "and front them with a coordinator that routes every request over "
        "a consistent-hash ring on the job content hash (shard-local "
        "caches stay hot), health-checks and restarts crashed workers, "
        "fails requests over to ring successors, and exposes /healthz, "
        "/stats and Prometheus /metrics.",
    )
    p_cluster.add_argument("--host", default="127.0.0.1")
    p_cluster.add_argument("--port", type=int, default=8350,
                           help="coordinator listen port (0 = ephemeral; "
                           "default 8350)")
    p_cluster.add_argument("--max-workers", type=int, default=None,
                           metavar="N",
                           help="autoscale up to N workers under admission-"
                           "queue pressure, reaping back to --workers after "
                           "a sustained idle window (default: no scaling)")
    p_cluster.add_argument("--no-hedge", action="store_true",
                           help="disable adaptive request hedging (on by "
                           "default at ~p95 of recent per-worker latency)")
    p_cluster.add_argument("--workers", type=int, default=4, metavar="N",
                           help="worker processes (default 4)")
    p_cluster.add_argument("--replicas", type=int, default=64, metavar="N",
                           help="virtual nodes per worker on the hash ring "
                           "(default 64)")
    p_cluster.add_argument("--failover-attempts", type=int, default=2,
                           metavar="N", help="distinct workers tried per "
                           "request before 503 (default 2)")
    p_cluster.add_argument("--hedge-after", type=float, default=None,
                           metavar="S", help="pin a static hedge delay of S "
                           "seconds instead of the adaptive ~p95 default "
                           "(safe — jobs are content-hashed and idempotent)")
    p_cluster.add_argument("--retry-budget-ratio", type=float, default=0.2,
                           metavar="R", help="retry-budget tokens deposited "
                           "per primary attempt to a worker; retries and "
                           "hedges aimed at it spend one (default 0.2, i.e. "
                           "~20%% steady-state amplification)")
    p_cluster.add_argument("--retry-budget-cap", type=float, default=10.0,
                           metavar="N", help="retry-budget bucket size per "
                           "worker — also the cold-start burst (default 10)")
    p_cluster.add_argument("--health-interval", type=float, default=0.5,
                           metavar="S", help="worker health-probe period "
                           "(default 0.5s)")
    p_cluster.add_argument("--threads", type=int, default=4, metavar="N",
                           help="concurrent minimizations per worker "
                           "(default 4)")
    p_cluster.add_argument("--queue-capacity", type=int, default=8,
                           metavar="N", help="per-worker admission queue "
                           "(default 8)")
    p_cluster.add_argument("--default-timeout", type=float, default=5.0,
                           metavar="S")
    p_cluster.add_argument("--default-budget", type=float, default=30.0,
                           metavar="S")
    p_cluster.add_argument("--cache-entries", type=int, default=1024,
                           metavar="N", help="per-worker in-memory cache "
                           "capacity (default 1024)")
    p_cluster.add_argument("--cache-dir", default=None,
                           help="shared on-disk result cache tier "
                           "(lockfile-guarded across workers)")
    p_cluster.add_argument("--max-disk-entries", type=int, default=None,
                           metavar="N", help="cap on shared disk cache "
                           "entries (default: unbounded)")
    p_cluster.add_argument("--audit-rate", type=int, default=16, metavar="N",
                           help="per-worker verify-on-read sampling "
                           "(default 16; 0 disables)")
    p_cluster.add_argument("--shadow-rate", type=int, default=8, metavar="N",
                           help="per-worker shadow-verification sampling "
                           "(default 8; 0 disables)")
    p_cluster.set_defaults(handler=_cmd_cluster)

    p_load = sub.add_parser(
        "loadtest",
        help="drive staged load at a serve/cluster target and report "
        "p50/p95/p99, shed rate and throughput",
        description="Closed-loop (virtual clients) or open-loop (fixed "
        "arrival rate) staged ramps over a seeded mixed small/large "
        "workload, against an existing --url and/or self-launched "
        "--compare-single / --cluster N targets.  Writes a "
        "repro-loadtest/1 JSON + markdown report pair.",
    )
    p_load.add_argument("--url", default=None,
                        help="existing target, e.g. http://127.0.0.1:8350")
    p_load.add_argument("--cluster", type=int, default=None, metavar="N",
                        help="also launch and drive an N-worker cluster")
    p_load.add_argument("--compare-single", action="store_true",
                        help="also launch and drive a single-process serve "
                        "baseline")
    p_load.add_argument("--stages", default="4x10,8x10", metavar="SPEC",
                        help="comma list of LOADxSECONDS stages; LOAD is "
                        "clients (closed mode) or rps (open mode) "
                        "(default '4x10,8x10')")
    p_load.add_argument("--mode", choices=["closed", "open"],
                        default="closed",
                        help="closed = fixed virtual clients, open = fixed "
                        "arrival rate immune to coordinated omission")
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument("--small-pool", type=int, default=24, metavar="N",
                        help="distinct small random instances (default 24)")
    p_load.add_argument("--large-pool", type=int, default=4, metavar="N",
                        help="distinct benchmark-sized instances (default 4)")
    p_load.add_argument("--large-fraction", type=float, default=0.25,
                        metavar="F", help="probability of drawing a large "
                        "instance (default 0.25)")
    p_load.add_argument("--dup-rate", type=float, default=0.0, metavar="F",
                        help="probability of drawing a near-duplicate "
                        "delta-form request (exercises the warm "
                        "re-minimization path; default 0)")
    p_load.add_argument("--max-rung", default="heuristic",
                        choices=["exact", "bounded", "heuristic", "sp", "none"],
                        help="ladder cap attached to every request "
                        "(default heuristic; 'none' = uncapped)")
    p_load.add_argument("--warmup-repeats", type=int, default=1, metavar="N",
                        help="passes over the distinct pool before "
                        "measuring, to prime caches (default 1)")
    p_load.add_argument("--request-timeout", type=float, default=5.0,
                        metavar="S", help="per-request rung deadline "
                        "(default 5s)")
    p_load.add_argument("--threads", type=int, default=4, metavar="N",
                        help="threads per launched server (default 4)")
    p_load.add_argument("--queue-capacity", type=int, default=8, metavar="N")
    p_load.add_argument("--hedge-after", type=float, default=None, metavar="S",
                        help="pin a static hedge delay on the launched "
                        "cluster (default: adaptive ~p95 hedging)")
    p_load.add_argument("--no-hedge", action="store_true",
                        help="disable hedging on the launched cluster")
    p_load.add_argument("--max-workers", type=int, default=None, metavar="N",
                        help="let the launched cluster autoscale up to N "
                        "workers under admission pressure")
    p_load.add_argument("--deadline", type=float, default=None, metavar="S",
                        help="stamp an end-to-end X-Repro-Deadline of S "
                        "seconds on every request; expired requests are "
                        "shed (503), reported as 'rejected'")
    p_load.add_argument("--chaos-sigstop", action="append", metavar="W@AT:DUR",
                        help="SIGSTOP launched-cluster worker W at AT "
                        "seconds for DUR seconds (repeatable), e.g. "
                        "w0@5:2.5; the clock starts when the cluster run "
                        "begins (warm-up included)")
    p_load.add_argument("--chaos-stall", default=None, metavar="P:S",
                        help="stall fraction P of coordinator->worker "
                        "proxy exchanges for S seconds (seeded via "
                        "--chaos-seed), e.g. 0.05:0.4")
    p_load.add_argument("--chaos-seed", type=int, default=0, metavar="N",
                        help="seed for probabilistic chaos draws "
                        "(default 0)")
    p_load.add_argument("--summarize", nargs="+", default=None,
                        metavar="JSON",
                        help="aggregate repeated loadtest report JSONs "
                        "into mean +/- 95%% CI per stage and exit "
                        "(ignores driving flags)")
    p_load.add_argument("--cache-dir", default=None,
                        help="cache directory for launched targets "
                        "(default: a throwaway tempdir)")
    p_load.add_argument("--service-time", type=float, default=None,
                        metavar="S", help="inject a deterministic per-"
                        "request service time into launched servers via "
                        "the fault plan (fabric-scaling experiments on "
                        "small machines)")
    p_load.add_argument("--out", default="results", metavar="DIR",
                        help="report directory (default results/)")
    p_load.add_argument("--name", default="loadtest", metavar="NAME",
                        help="report basename (default 'loadtest')")
    p_load.add_argument("--title", default="Load test", metavar="TITLE")
    p_load.add_argument("--note", action="append", metavar="TEXT",
                        help="extra note appended to the report "
                        "(repeatable)")
    p_load.set_defaults(handler=_cmd_loadtest)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential/metamorphic fuzzing of the engine rungs",
    )
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="campaign seed (fully determines the corpus)")
    p_fuzz.add_argument("--budget", type=float, default=60.0, metavar="S",
                        help="time budget in seconds (default 60)")
    p_fuzz.add_argument("--trials", type=int, default=None, metavar="N",
                        help="hard cap on trial count (default: budget-bound)")
    p_fuzz.add_argument("--n-min", type=int, default=3, metavar="N",
                        help="minimum input width (default 3)")
    p_fuzz.add_argument("--n-max", type=int, default=6, metavar="N",
                        help="maximum input width (default 6)")
    p_fuzz.add_argument("--families", default=None, metavar="LIST",
                        help="comma-separated family subset "
                        "(dense,sparse,arith-like,dc-heavy; default all)")
    p_fuzz.add_argument("--plant-bug", choices=("drop-cover",), default=None,
                        help="mutate one rung's output before checking — "
                        "proves the harness detects and shrinks a wrong "
                        "cover (testing/CI)")
    p_fuzz.add_argument("--rung-budget", type=float, default=5.0, metavar="S",
                        help="per-minimizer-call budget in seconds; a rung "
                        "that runs out is skipped (default 5)")
    p_fuzz.add_argument("--out", default="results/fuzz", metavar="DIR",
                        help="artifact directory (default results/fuzz)")
    p_fuzz.add_argument("--replay", default=None, metavar="FILE",
                        help="re-run a failure artifact instead of fuzzing")
    p_fuzz.set_defaults(handler=_cmd_fuzz)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point.  Structured errors (:mod:`repro.errors`) become a
    clean one-line message plus their taxonomy exit code: 2 usage /
    verification, 3 parse, 4 corrupt record, 5 quarantined, 6 budget
    exceeded, 7 cancelled, 8 overloaded, 9 integrity, 1 batch
    failures, 70 internal."""
    args = build_parser().parse_args(argv)
    try:
        args.handler(args)
    except ReproError as exc:
        print(f"spp-minimize: error: {exc}", file=sys.stderr)
        return exc.exit_code
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
