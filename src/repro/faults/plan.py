"""Deterministic fault plans: what to break, where, and when.

A :class:`FaultPlan` is a list of :class:`FaultRule`\\ s evaluated at
named *sites* instrumented through the engine (``scheduler.rung_start``,
``cache.put``, ``manifest.store``, ``manifest.journal``,
``batch.job_done``, …).  Chaos tests install a plan and run a real
batch; the plan decides — deterministically — which hits of which sites
misbehave.

Two hook shapes:

* :meth:`FaultPlan.maybe_fire` — control-flow faults.  Kinds:
  ``crash`` (``os._exit``, kills the worker or the whole process),
  ``slow`` (sleep ``arg`` seconds), ``memory`` (raise ``MemoryError``),
  ``error`` (raise ``RuntimeError``).
* :meth:`FaultPlan.mangle` — data faults applied to serialized text on
  its way to disk.  Kinds: ``corrupt`` (splice garbage into the
  payload), ``truncate`` (drop the tail), simulating torn writes that
  bypass the atomic-rename protection.

Determinism: every rule keeps a **hit counter**; a hit fires iff it
falls in the rule's window (``after < hit <= after + times``) and a
random draw seeded by ``(seed, rule index, hit number)`` passes ``p``.
With ``counter_dir`` set, counters live in append-only files so hit
numbering is global across the scheduler *and* its pooled workers —
"crash the third rung attempt overall" means the same thing no matter
which process gets there.  Plans propagate into workers through the
``REPRO_FAULT_PLAN`` environment variable (see :mod:`repro.faults`).
"""

from __future__ import annotations

import fnmatch
import json
import os
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "ENV_VAR", "FaultRule", "FaultPlan",
    "FireKinds", "MangleKinds", "NetworkKinds", "PayloadKinds",
]

ENV_VAR = "REPRO_FAULT_PLAN"

FireKinds = ("crash", "slow", "memory", "error")
MangleKinds = ("corrupt", "truncate")
# Kinds interpreted by the call site via FaultPlan.check (the cluster
# proxy's network faults); maybe_fire/mangle never execute them.
NetworkKinds = ("drop", "black_hole", "sigstop")
# Semantic payload faults, also call-site interpreted: the cache's
# ``cache.disk.corrupt_payload`` mutates a stored result *after* the
# checksum envelope is computed, producing a record that is
# checksum-valid but semantically wrong — the case only verify-on-read
# auditing can catch.
PayloadKinds = ("corrupt_payload",)

_DEFAULT_EXIT_CODE = 86
_CORRUPT_MARKER = "<<injected-corruption>>"


@dataclass(frozen=True)
class FaultRule:
    """One fault: ``kind`` at ``site``, gated by a deterministic window.

    ``site`` may be an exact name or an ``fnmatch`` glob; ``match``
    (when non-empty) additionally requires the hit's ``label`` context
    to contain it as a substring — the handle for targeting one poison
    job out of a batch.  ``times=None`` means an unbounded window.
    """

    site: str
    kind: str
    match: str = ""
    p: float = 1.0
    after: int = 0
    times: int | None = 1
    arg: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FireKinds + MangleKinds + NetworkKinds + PayloadKinds:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"probability {self.p!r} outside [0, 1]")

    def matches(self, site: str, ctx: dict[str, Any]) -> bool:
        if self.site != site and not fnmatch.fnmatchcase(site, self.site):
            return False
        if self.match and self.match not in str(ctx.get("label", "")):
            return False
        return True

    def to_dict(self) -> dict[str, Any]:
        return {
            "site": self.site, "kind": self.kind, "match": self.match,
            "p": self.p, "after": self.after, "times": self.times,
            "arg": self.arg,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> FaultRule:
        return cls(
            site=data["site"], kind=data["kind"],
            match=data.get("match", ""), p=data.get("p", 1.0),
            after=data.get("after", 0), times=data.get("times", 1),
            arg=data.get("arg", 0.0),
        )


@dataclass
class FaultPlan:
    """A seeded set of rules plus the counters that sequence them."""

    rules: list[FaultRule] = field(default_factory=list)
    seed: int = 0
    counter_dir: str | None = None
    _local_hits: dict[int, int] = field(default_factory=dict, repr=False)

    # -- wire format ---------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "counter_dir": self.counter_dir,
                "rules": [rule.to_dict() for rule in self.rules],
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> FaultPlan:
        data = json.loads(text)
        return cls(
            rules=[FaultRule.from_dict(r) for r in data.get("rules", ())],
            seed=data.get("seed", 0),
            counter_dir=data.get("counter_dir"),
        )

    @classmethod
    def from_env(cls, environ: dict[str, str] | None = None) -> FaultPlan | None:
        text = (environ if environ is not None else os.environ).get(ENV_VAR)
        if not text:
            return None
        return cls.from_json(text)

    # -- hit sequencing ------------------------------------------------

    def _next_hit(self, rule_index: int) -> int:
        """The 1-based hit number for this rule, globally sequenced.

        With ``counter_dir``, an O_APPEND byte per hit makes the file
        size the hit count — atomic across every process sharing the
        plan.  Without it, counters are per-process.
        """
        if self.counter_dir is not None:
            path = Path(self.counter_dir)
            path.mkdir(parents=True, exist_ok=True)
            fd = os.open(
                path / f"rule{rule_index}.hits",
                os.O_APPEND | os.O_CREAT | os.O_WRONLY,
                0o644,
            )
            try:
                os.write(fd, b".")
                return os.fstat(fd).st_size
            finally:
                os.close(fd)
        hit = self._local_hits.get(rule_index, 0) + 1
        self._local_hits[rule_index] = hit
        return hit

    def _should_fire(self, rule_index: int, rule: FaultRule, hit: int) -> bool:
        if hit <= rule.after:
            return False
        if rule.times is not None and hit > rule.after + rule.times:
            return False
        if rule.p >= 1.0:
            return True
        draw = random.Random(f"{self.seed}:{rule_index}:{hit}").random()
        return draw < rule.p

    # -- hooks ---------------------------------------------------------

    def check(self, site: str, **ctx: Any) -> FaultRule | None:
        """Evaluate rules at ``site`` and return the first that fires,
        without executing its kind.

        For sites whose failure semantics live at the call site rather
        than in the rule kind — the cluster proxy's network faults
        (``cluster.proxy.drop`` closes the upstream exchange,
        ``.black_hole`` consumes the attempt's patience, ``.slow_worker``
        SIGSTOPs the target) interpret the returned rule themselves,
        using ``rule.arg`` as their duration knob.  Hit counters advance
        exactly as for :meth:`maybe_fire`.
        """
        for index, rule in enumerate(self.rules):
            if not rule.matches(site, ctx):
                continue
            if self._should_fire(index, rule, self._next_hit(index)):
                return rule
        return None

    def maybe_fire(self, site: str, **ctx: Any) -> None:
        """Evaluate control-flow rules at ``site``; may not return."""
        for index, rule in enumerate(self.rules):
            if rule.kind not in FireKinds or not rule.matches(site, ctx):
                continue
            if not self._should_fire(index, rule, self._next_hit(index)):
                continue
            if rule.kind == "crash":
                os._exit(int(rule.arg) or _DEFAULT_EXIT_CODE)
            elif rule.kind == "slow":
                # Sleep in slices so a cooperative budget passed in the
                # hit context can cancel an injected stall mid-sleep,
                # exactly like an instrumented real rung.
                budget = ctx.get("budget")
                remaining = rule.arg or 0.05
                while remaining > 0:
                    if budget is not None:
                        budget.check()
                    slice_s = min(remaining, 0.02)
                    time.sleep(slice_s)
                    remaining -= slice_s
                if budget is not None:
                    budget.check()
            elif rule.kind == "memory":
                raise MemoryError(f"injected MemoryError at {site}")
            else:  # error
                raise RuntimeError(f"injected fault at {site}")

    def mangle(self, site: str, text: str, **ctx: Any) -> str:
        """Apply data-fault rules at ``site`` to serialized ``text``."""
        for index, rule in enumerate(self.rules):
            if rule.kind not in MangleKinds or not rule.matches(site, ctx):
                continue
            if not self._should_fire(index, rule, self._next_hit(index)):
                continue
            if rule.kind == "truncate":
                text = text[: len(text) // 2]
            else:  # corrupt
                cut = max(1, len(text) // 2)
                text = text[:cut] + _CORRUPT_MARKER + text[cut:]
        return text
