"""repro.faults — seeded, deterministic fault injection.

The chaos-testing companion of :mod:`repro.engine`: a
:class:`FaultPlan` describes *which* failures to provoke (worker
crashes, rung slowness, ``MemoryError``, corrupt or truncated disk
records) at *which* instrumented sites, deterministically.  Production
code calls the module-level hooks

    from repro import faults
    faults.maybe_fire("scheduler.rung_start", label=job.label)
    text = faults.mangle("cache.put", text)

which are no-ops (one cached env lookup) unless a plan is active.

A plan becomes active through :func:`install` — which also exports it
as the ``REPRO_FAULT_PLAN`` environment variable so pooled worker
processes (fork or spawn) inherit it — or by launching the process with
that variable already set.  The hooks re-read the variable whenever its
raw value changes, so tests can install/uninstall plans freely.
"""

from __future__ import annotations

import os
from typing import Any

from repro.faults.plan import (
    ENV_VAR,
    FaultPlan,
    FaultRule,
    FireKinds,
    MangleKinds,
    NetworkKinds,
    PayloadKinds,
)

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "FaultRule",
    "FireKinds",
    "MangleKinds",
    "NetworkKinds",
    "PayloadKinds",
    "active",
    "install",
    "uninstall",
    "maybe_fire",
    "check",
    "mangle",
]

# Cache keyed by the raw env value so a changed/cleared variable is
# picked up on the next hook call (workers inherit env at fork/spawn).
_cached_raw: str | None = None
_cached_plan: FaultPlan | None = None


def active() -> FaultPlan | None:
    """The currently active plan, or None (parsed from the env var)."""
    global _cached_raw, _cached_plan
    raw = os.environ.get(ENV_VAR)
    if raw != _cached_raw:
        _cached_raw = raw
        _cached_plan = FaultPlan.from_json(raw) if raw else None
    return _cached_plan


def install(plan: FaultPlan) -> None:
    """Activate ``plan`` here and in future child processes."""
    os.environ[ENV_VAR] = plan.to_json()


def uninstall() -> None:
    """Deactivate any plan (idempotent)."""
    os.environ.pop(ENV_VAR, None)


def maybe_fire(site: str, **ctx: Any) -> None:
    """Fire any matching control-flow fault at ``site`` (usually no-op)."""
    plan = active()
    if plan is not None:
        plan.maybe_fire(site, **ctx)


def check(site: str, **ctx: Any) -> FaultRule | None:
    """Return the first rule firing at ``site`` without executing it.

    For sites whose fault semantics live at the call site (the cluster
    proxy's network faults); usually None — one cached env lookup.
    """
    plan = active()
    if plan is not None:
        return plan.check(site, **ctx)
    return None


def mangle(site: str, text: str, **ctx: Any) -> str:
    """Apply any matching data fault to ``text`` at ``site``."""
    plan = active()
    if plan is not None:
        return plan.mangle(site, text, **ctx)
    return text
