"""GF(2) linear algebra on int-encoded vectors.

A *basis* throughout this module is a tuple of nonzero ints in **reduced
row echelon form (RREF)** with pivots chosen at the *lowest* variable
index:

* each vector's lowest set bit is its *pivot*;
* pivots are strictly increasing along the tuple;
* a pivot position is set in no other vector of the basis.

This normalization is what makes the basis a canonical representative of
the subspace it spans: two tuples are equal iff the spanned subspaces
are equal.  The pivot variables are exactly the paper's *canonical
variables* of a pseudocube (see :mod:`repro.core.pseudocube`), which is
why the low-index pivot convention is not arbitrary.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = [
    "rref",
    "reduce_vector",
    "insert_vector",
    "contains",
    "decompose",
    "intersect_spaces",
    "pivot_of",
    "pivot_mask",
    "rank",
    "span_points",
    "is_rref",
]


def pivot_of(v: int) -> int:
    """Pivot (lowest set bit index) of a nonzero vector."""
    if v == 0:
        raise ValueError("zero vector has no pivot")
    return (v & -v).bit_length() - 1


def rref(vectors: Iterable[int]) -> tuple[int, ...]:
    """Reduce ``vectors`` to the canonical RREF basis of their span."""
    basis: list[int] = []
    for v in vectors:
        _insert_into(basis, v)
    return tuple(basis)


def _insert_into(basis: list[int], v: int) -> bool:
    """Destructively insert ``v`` into an RREF ``basis`` list.

    Returns True if the vector was independent (basis grew).
    """
    for b in basis:
        if v & (b & -b):
            v ^= b
    if v == 0:
        return False
    low = v & -v
    for i, b in enumerate(basis):
        if b & low:
            basis[i] = b ^ v
    # Keep vectors ordered by increasing pivot.
    pos = 0
    while pos < len(basis) and (basis[pos] & -basis[pos]) < low:
        pos += 1
    basis.insert(pos, v)
    return True


def insert_vector(basis: tuple[int, ...], v: int) -> tuple[int, ...]:
    """Return the RREF basis of ``span(basis) + span{v}``.

    If ``v`` already lies in the span, the input basis is returned
    unchanged (same object), which callers use as a cheap dependence
    test.
    """
    lst = list(basis)
    if _insert_into(lst, v):
        return tuple(lst)
    return basis


def reduce_vector(basis: tuple[int, ...], v: int) -> int:
    """Reduce ``v`` modulo the span: clear every pivot position.

    The result is the canonical coset representative of ``v`` — zero iff
    ``v`` is in the span.  For a pseudocube this is how the *anchor*
    (row 0 of the canonical matrix) is computed from any member point.
    """
    for b in basis:
        if v & (b & -b):
            v ^= b
    return v


def contains(basis: tuple[int, ...], v: int) -> bool:
    """True iff ``v`` is in the span of ``basis``."""
    return reduce_vector(basis, v) == 0


def pivot_mask(basis: tuple[int, ...]) -> int:
    """Bitmask of all pivot positions (the canonical variables)."""
    mask = 0
    for b in basis:
        mask |= b & -b
    return mask


def rank(vectors: Iterable[int]) -> int:
    """Rank of a set of GF(2) vectors."""
    return len(rref(vectors))


def span_points(basis: tuple[int, ...], offset: int = 0) -> Iterator[int]:
    """Enumerate the coset ``offset + span(basis)`` (2^rank points).

    Uses a Gray-code walk so each step is a single XOR.
    """
    point = offset
    yield point
    size = 1 << len(basis)
    for i in range(1, size):
        # Index of the basis vector to toggle: ruler sequence.
        point ^= basis[(i & -i).bit_length() - 1]
        yield point


def intersect_spaces(
    basis_a: tuple[int, ...], basis_b: tuple[int, ...], n: int
) -> tuple[int, ...]:
    """RREF basis of ``span(basis_a) ∩ span(basis_b)``.

    Zassenhaus: row-reduce the pairs ``(v, v)`` for ``v ∈ A`` and
    ``(w, 0)`` for ``w ∈ B`` (pairs packed into a single int, first
    component in the low bits so the low-pivot RREF processes it
    first); rows whose first component vanished carry a basis of
    ``A ∩ B`` in their second component.
    """
    rows: list[int] = []
    for v in basis_a:
        _insert_into(rows, v | (v << n))
    for w in basis_b:
        _insert_into(rows, w)
    low_mask = (1 << n) - 1
    inter = [row >> n for row in rows if (row & low_mask) == 0]
    return rref(inter)


def decompose(
    basis_a: tuple[int, ...], basis_b: tuple[int, ...], v: int
) -> int | None:
    """Split ``v = u ⊕ w`` with ``u ∈ span(basis_a)``, ``w ∈ span(basis_b)``.

    Returns ``u`` (any valid choice), or None when ``v`` is not in the
    sum of the two spaces.
    """
    # Tagged elimination: carry, for each reduced row, the part of it
    # contributed by A-generators.
    rows: list[tuple[int, int]] = []  # (vector, a_part)
    for vec, a_part in [(b, b) for b in basis_a] + [(w, 0) for w in basis_b]:
        for row, row_a in rows:
            if vec & (row & -row):
                vec ^= row
                a_part ^= row_a
        if vec == 0:
            continue
        low = vec & -vec
        for i, (row, row_a) in enumerate(rows):
            if row & low:
                rows[i] = (row ^ vec, row_a ^ a_part)
        pos = 0
        while pos < len(rows) and (rows[pos][0] & -rows[pos][0]) < low:
            pos += 1
        rows.insert(pos, (vec, a_part))
    acc = 0
    for row, row_a in rows:
        if v & (row & -row):
            v ^= row
            acc ^= row_a
    if v != 0:
        return None
    return acc


def is_rref(basis: tuple[int, ...]) -> bool:
    """Check the RREF invariants (used by tests and assertions)."""
    prev_pivot = -1
    pivots = 0
    for b in basis:
        if b == 0:
            return False
        p = pivot_of(b)
        if p <= prev_pivot:
            return False
        prev_pivot = p
        pivots |= 1 << p
    # No pivot position may appear in another vector.
    for b in basis:
        if (b & pivots) != (b & -b):
            return False
    return True
