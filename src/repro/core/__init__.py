"""Core pseudocube algebra: the paper's Section 2 and 3.1 machinery.

Public surface:

* :class:`~repro.core.pseudocube.Pseudocube` — affine-form pseudocubes;
* :class:`~repro.core.exor.ExorFactor` /
  :class:`~repro.core.cex.CexExpression` — EXOR factors and canonical
  expressions (Definition 1);
* :func:`~repro.core.structure.structure_of` — Definition 2;
* :func:`~repro.core.union.cex_union` — Algorithm 1;
* :func:`~repro.core.subcubes.sub_pseudocubes` — Theorem 2;
* :class:`~repro.core.spp_form.SppForm` — SPP forms;
* :mod:`~repro.core.canonical` — Section 2 canonical matrices.
"""

from repro.core.cex import CexExpression, cex_of
from repro.core.exor import ExorFactor, norm_exor
from repro.core.pseudocube import NotAPseudocubeError, Pseudocube
from repro.core.spp_form import SppForm
from repro.core.structure import same_structure, structure_key, structure_of
from repro.core.subcubes import constrain, sub_pseudocubes
from repro.core.union import UnionError, cex_union

__all__ = [
    "CexExpression",
    "ExorFactor",
    "NotAPseudocubeError",
    "Pseudocube",
    "SppForm",
    "UnionError",
    "cex_of",
    "cex_union",
    "constrain",
    "norm_exor",
    "same_structure",
    "structure_key",
    "structure_of",
    "sub_pseudocubes",
]
