"""Sub-pseudocube enumeration — Theorem 2 of the paper.

For a pseudocube ``R`` of degree ``m`` with canonical variables
``x_{c_1}, …, x_{c_m}``, the pseudocubes ``P ⊂ R`` of degree ``m-1`` are
obtained by appending one extra EXOR factor ``A = y_1 ⊕ … ⊕ ŷ_k`` whose
variables are canonical variables of ``R``.  There are
``2^{m+1} - 2`` such factors (a nonempty subset of the canonical
variables × a complementation bit) and they yield all the *distinct*
immediate sub-pseudocubes.

In the affine representation appending the factor adds one affine
constraint ``⊕_{y ∈ Y} x_y = b`` over the pivot variables: the direction
space loses one dimension and the anchor stays (``b = 0``) or shifts by
a basis vector (``b = 1``).  This is the engine of the heuristic's
*descendant phase* (Algorithm 3, step 2).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core import gf2
from repro.core.bitvec import bits_of
from repro.core.pseudocube import Pseudocube

__all__ = ["sub_pseudocubes", "constrain"]


def constrain(pc: Pseudocube, y_mask: int, b: int) -> Pseudocube:
    """The sub-pseudocube of ``pc`` satisfying ``⊕_{y∈Y} x_y = b``.

    ``y_mask`` must be a nonempty subset of the canonical variables of
    ``pc``; the result has degree ``pc.degree - 1``.
    """
    if y_mask == 0:
        raise ValueError("Y must be a nonempty subset of canonical variables")
    if y_mask & ~pc.canonical_mask:
        raise ValueError("Y contains non-canonical variables")
    if b not in (0, 1):
        raise ValueError("b must be 0 or 1")
    in_y = []
    out_y = []
    for vec in pc.basis:
        if vec & y_mask & (vec & -vec):
            in_y.append(vec)
        else:
            out_y.append(vec)
    # A basis vector's only canonical position is its own pivot, so the
    # Y-parity of vector v is 1 iff pivot(v) ∈ Y.
    w = in_y[0]
    new_vectors = out_y + [v ^ w for v in in_y[1:]]
    basis = gf2.rref(new_vectors)
    anchor = pc.anchor if b == 0 else pc.anchor ^ w
    anchor = gf2.reduce_vector(basis, anchor)
    return Pseudocube(pc.n, anchor, basis)


def sub_pseudocubes(pc: Pseudocube) -> Iterator[Pseudocube]:
    """All ``2^{m+1} - 2`` distinct sub-pseudocubes of degree ``m-1``.

    Yields nothing for degree-0 pseudocubes (single points have no
    proper sub-pseudocubes).
    """
    m = pc.degree
    if m == 0:
        return
    canon = list(bits_of(pc.canonical_mask))
    for subset in range(1, 1 << m):
        y_mask = 0
        for i in bits_of(subset):
            y_mask |= 1 << canon[i]
        for b in (0, 1):
            yield constrain(pc, y_mask, b)
