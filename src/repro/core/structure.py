"""Structures of pseudocubes — Definition 2 and Theorem 1 of the paper.

The *structure* ``STR(P)`` of a pseudocube is its CEX expression with
all complementations removed: the tuple of EXOR-factor supports.  Two
key facts drive the whole minimization method:

* **Theorem 1**: ``P1 ∪ P2`` is a pseudocube iff ``STR(P1) == STR(P2)``;
* two *distinct* pseudocubes with the same structure are disjoint.

In the affine representation the structure is a function of the
direction space alone (the supports are read off the RREF basis, the
complementations off the anchor), so the structure key of a pseudocube
is simply its ``basis`` tuple.  The partition trie of Section 3.2 groups
pseudoproducts by the symbolic form; :func:`structure_of` produces that
form, and the tests verify it is in bijection with the basis key.
"""

from __future__ import annotations

from repro.core import gf2
from repro.core.cex import CexExpression
from repro.core.pseudocube import Pseudocube

__all__ = ["structure_of", "structure_key", "same_structure"]


def structure_key(pc: Pseudocube) -> tuple[int, ...]:
    """Canonical hashable structure key: the RREF direction basis."""
    return pc.basis


def structure_of(pc: Pseudocube) -> tuple[int, ...]:
    """``STR(P)`` as a tuple of EXOR-factor supports (Definition 2).

    The supports appear in CEX order (increasing non-canonical
    variable).  Equal structures ⇔ equal direction spaces ⇔ equal
    :func:`structure_key`.
    """
    pivots = [gf2.pivot_of(b) for b in pc.basis]
    canonical = pc.canonical_mask
    supports = []
    for j in range(pc.n):
        if (canonical >> j) & 1:
            continue
        support = 1 << j
        for b, p in zip(pc.basis, pivots):
            if (b >> j) & 1:
                support |= 1 << p
        supports.append(support)
    return tuple(supports)


def structure_of_cex(cex: CexExpression) -> tuple[int, ...]:
    """``STR`` of an arbitrary CEX expression (supports only)."""
    return cex.structure()


def same_structure(p1: Pseudocube, p2: Pseudocube) -> bool:
    """Theorem 1 predicate on pseudocubes."""
    return p1.same_structure(p2)
