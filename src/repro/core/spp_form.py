"""SPP forms — sums (OR) of pseudoproducts.

An :class:`SppForm` is the three-level network the paper synthesizes:
OR of ANDs of EXORs.  A sum-of-products (SP) expression is the special
case in which every pseudoproduct is a cube.

Cost metrics follow the paper: ``num_literals`` is the minimization
objective, ``num_pseudoproducts`` is the ``#P`` / ``#PP`` column of
Table 1.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from functools import cached_property

from repro.core.cex import cex_of
from repro.core.pseudocube import Pseudocube

__all__ = ["SppForm"]


@dataclass(frozen=True)
class SppForm:
    """A disjunction of pseudoproducts over ``B^n``."""

    n: int
    pseudoproducts: tuple[Pseudocube, ...]

    @classmethod
    def from_iterable(cls, n: int, pps: Iterable[Pseudocube]) -> "SppForm":
        return cls(n, tuple(pps))

    @property
    def num_pseudoproducts(self) -> int:
        return len(self.pseudoproducts)

    @cached_property
    def num_literals(self) -> int:
        """Total literal count over all CEX expressions (paper's #L)."""
        return sum(p.num_literals for p in self.pseudoproducts)

    @cached_property
    def num_exor_factors(self) -> int:
        """Total number of EXOR factors (AND-gate fan-in of the form)."""
        return sum(p.n - p.degree for p in self.pseudoproducts)

    def evaluate(self, point: int) -> int:
        """1 iff the point belongs to some pseudoproduct."""
        for p in self.pseudoproducts:
            if point in p:
                return 1
        return 0

    def on_set(self) -> set[int]:
        """The set of points covered by the form."""
        covered: set[int] = set()
        for p in self.pseudoproducts:
            covered.update(p.points())
        return covered

    def is_sp(self) -> bool:
        """True iff every pseudoproduct is a plain cube (SP form)."""
        return all(p.is_cube() for p in self.pseudoproducts)

    def covered(self, points: Iterable[int]) -> set[int]:
        """The subset of ``points`` covered by the form.

        Goes through the structure-grouped coverage kernel: one mask
        pass over all pseudoproducts instead of a membership test per
        (point, pseudoproduct) pair.
        """
        # Local import: repro.kernels sits above repro.core.
        from repro.kernels.coverage import coverage_masks

        rows = sorted(set(points))
        mask = 0
        for column in coverage_masks(rows, self.pseudoproducts):
            mask |= column
        out: set[int] = set()
        while mask:
            low = mask & -mask
            out.add(rows[low.bit_length() - 1])
            mask ^= low
        return out

    def covers(self, points: Iterable[int]) -> bool:
        """True iff every given point is covered by the form."""
        pts = set(points)
        return len(self.covered(pts)) == len(pts)

    def to_string(self, var: str = "x") -> str:
        if not self.pseudoproducts:
            return "0"
        return " + ".join(cex_of(p).to_string(var) for p in self.pseudoproducts)

    def __str__(self) -> str:
        return self.to_string()
