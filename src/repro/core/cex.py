"""Canonical expressions (CEX) of pseudocubes — Definition 1 of the paper.

``CEX(P)`` is the product of one EXOR factor per *non-canonical*
variable of the pseudocube ``P``.  The factor for non-canonical ``x_j``
contains ``x_j`` plus the canonical variables whose pattern influences
column ``j`` of the canonical matrix; ``x_j`` is complemented iff entry
``M[0, j]`` of the matrix is 0 (rule 2).

In the affine representation both rules fall out of the RREF basis:

* the canonical variables in the factor of ``x_j`` are the pivots whose
  basis vector has bit ``j`` set;
* ``M[0, j]`` is bit ``j`` of the anchor, so the factor's parity is
  ``1 ^ anchor[j]``.

A :class:`CexExpression` is usable standalone (any product of EXOR
factors, not necessarily canonical): it can be evaluated, counted,
printed, and turned back into a pseudocube when it is satisfiable.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.core import gf2
from repro.core.bitvec import get_bit, mask_of_width
from repro.core.exor import ExorFactor
from repro.core.pseudocube import NotAPseudocubeError, Pseudocube

__all__ = ["CexExpression", "cex_of"]


@dataclass(frozen=True)
class CexExpression:
    """A product (AND) of EXOR factors over ``B^n``.

    When produced by :func:`cex_of` the factors are in CEX normal form:
    one factor per non-canonical variable, ordered by increasing
    non-canonical variable, each factor's non-canonical variable being
    its highest-index one.
    """

    n: int
    factors: tuple[ExorFactor, ...]

    @property
    def num_factors(self) -> int:
        return len(self.factors)

    @cached_property
    def num_literals(self) -> int:
        """Total number of literals — the paper's minimization cost."""
        return sum(f.num_literals for f in self.factors)

    def evaluate(self, point: int) -> int:
        """1 iff every factor evaluates to 1 on ``point``."""
        for f in self.factors:
            if f.evaluate(point) == 0:
                return 0
        return 1

    def structure(self) -> tuple[int, ...]:
        """``STR`` of the expression: supports without complementations."""
        return tuple(f.support for f in self.factors)

    def to_pseudocube(self) -> Pseudocube:
        """The point set of the expression, as a pseudocube.

        Raises :class:`NotAPseudocubeError` when the factors are
        inconsistent (empty point set) — e.g. ``x0 · x̄0``.
        """
        # Solve the affine system {XOR(x & support) == 1 ^ parity}.
        basis: list[int] = []
        rhs: list[int] = []
        for f in self.factors:
            if f.is_constant:
                if f.parity == 0:  # the constant 0 factor
                    raise NotAPseudocubeError("expression contains a 0 factor")
                continue
            row = f.support
            b = 1 ^ f.parity
            for vec, val in zip(basis, rhs):
                if row & (vec & -vec):
                    row ^= vec
                    b ^= val
            if row == 0:
                if b:
                    raise NotAPseudocubeError("inconsistent EXOR factors")
                continue
            low = row & -row
            for i, vec in enumerate(basis):
                if vec & low:
                    basis[i] ^= row
                    rhs[i] ^= b
            pos = 0
            while pos < len(basis) and (basis[pos] & -basis[pos]) < low:
                pos += 1
            basis.insert(pos, row)
            rhs.insert(pos, b)
        point = _solve_affine(basis, rhs)
        # Direction space: nullspace of the constraint matrix.
        constrained = 0
        for vec in basis:
            constrained |= vec & -vec
        free = mask_of_width(self.n) & ~constrained
        direction: list[int] = []
        for j in range(self.n):
            if not (free >> j) & 1:
                continue
            vec = 1 << j
            for row in basis:
                if (row >> j) & 1:
                    vec |= row & -row
            direction.append(vec)
        dir_basis = gf2.rref(direction)
        anchor = gf2.reduce_vector(dir_basis, point)
        return Pseudocube(self.n, anchor, dir_basis)

    def to_string(self, var: str = "x") -> str:
        if not self.factors:
            return "1"
        return " . ".join(f.to_string(var) for f in self.factors)

    def __str__(self) -> str:
        return self.to_string()


def _solve_affine(basis: list[int], rhs: list[int]) -> int:
    """One solution of a fully-reduced affine system.

    ``basis`` is in RREF, so each row's pivot appears in no other row;
    setting every free variable to 0 forces pivot ``p`` of row ``i`` to
    value ``rhs[i]`` (the row's non-pivot variables are all free, hence
    0).
    """
    point = 0
    for row, val in zip(basis, rhs):
        if val:
            point |= row & -row
    return point


def cex_of(pc: Pseudocube) -> CexExpression:
    """The canonical expression of a pseudocube (Definition 1)."""
    factors = []
    pivots = [gf2.pivot_of(b) for b in pc.basis]
    canonical = pc.canonical_mask
    for j in range(pc.n):
        if (canonical >> j) & 1:
            continue
        support = 1 << j
        for b, p in zip(pc.basis, pivots):
            if (b >> j) & 1:
                support |= 1 << p
        parity = 1 ^ get_bit(pc.anchor, j)
        factors.append(ExorFactor(support, parity))
    # Factors are produced for increasing j; j is the highest variable in
    # its own support (pivots are always below the columns they touch),
    # so this is already the CEX order.
    return CexExpression(pc.n, tuple(factors))
