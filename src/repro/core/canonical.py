"""Canonical matrices and normal vectors — Section 2 of the paper.

This module implements the paper's original, matrix-based
characterization of pseudocubes.  It exists for three reasons:

* *fidelity* — figure 1 and the definitions of Section 2 are reproduced
  and unit-tested literally (normal vectors, k-canonical columns,
  canonical matrices);
* *recognition* — :func:`is_pseudocube` decides whether a raw point set
  is a pseudocube by the matrix definition, independently of the affine
  machinery; the test suite checks the two characterizations agree;
* *presentation* — :func:`canonical_matrix` renders a pseudocube exactly
  as the paper's figure 1.

Rows are ordered by the value of the point read with ``x_0`` as the
most significant bit, matching the paper's "rows interpreted as binary
numbers arranged in increasing order".
"""

from __future__ import annotations

from repro.core.bitvec import get_bit, to_string
from repro.core.pseudocube import Pseudocube

__all__ = [
    "is_normal_vector",
    "is_k_canonical",
    "row_sort_key",
    "canonical_matrix",
    "canonical_columns",
    "is_canonical_matrix",
    "is_pseudocube",
    "render_matrix",
]


def is_normal_vector(bits: tuple[int, ...]) -> bool:
    """A vector of 2^m elements is *normal* if m = 0, or it is ``v v̂``
    with ``v`` normal (Section 2)."""
    size = len(bits)
    if size == 0 or size & (size - 1):
        return False
    if size == 1:
        return True
    half = size // 2
    v, w = bits[:half], bits[half:]
    if w != v and w != tuple(1 - b for b in v):
        return False
    return is_normal_vector(v)


def is_k_canonical(bits: tuple[int, ...], k: int) -> bool:
    """Check the paper's k-canonical pattern ``0…0 1…1 0…0 1…1 …``.

    A normal vector ``v_0 … v_{2^{m-k}-1}`` is k-canonical when
    ``v_i = 0`` for even ``i`` and ``v_i = 1`` for odd ``i``, each block
    having length ``2^k``.
    """
    size = len(bits)
    if size == 0 or size & (size - 1):
        return False
    block = 1 << k
    if block > size // 2:
        return False
    for i, b in enumerate(bits):
        expected = (i // block) & 1
        if b != expected:
            return False
    return True


def row_sort_key(point: int, n: int) -> int:
    """Value of ``point`` read as the paper reads matrix rows: ``x_0``
    is the leftmost, most-significant bit."""
    key = 0
    for i in range(n):
        key = (key << 1) | ((point >> i) & 1)
    return key


def canonical_matrix(pc: Pseudocube) -> list[int]:
    """The rows of the canonical matrix of ``pc``, sorted as in the
    paper (increasing binary value, ``x_0`` most significant)."""
    return sorted(pc.points(), key=lambda p: row_sort_key(p, pc.n))


def _column(rows: list[int], j: int) -> tuple[int, ...]:
    return tuple(get_bit(r, j) for r in rows)


def canonical_columns(rows: list[int], n: int) -> list[int] | None:
    """The canonical column indices of a sorted normal matrix.

    A canonical matrix with ``2^m`` rows contains columns
    ``c_{i_0} < … < c_{i_{m-1}}`` where ``c_{i_j}`` is
    ``(m-j-1)``-canonical.  Returns None if the matrix is not canonical.
    """
    size = len(rows)
    m = size.bit_length() - 1
    if (1 << m) != size:
        return None
    found: list[int] = []
    next_level = m - 1
    for j in range(n):
        col = _column(rows, j)
        if not is_normal_vector(col):
            return None
        if next_level >= 0 and is_k_canonical(col, next_level):
            found.append(j)
            next_level -= 1
    if len(found) != m:
        return None
    return found


def is_canonical_matrix(rows: list[int], n: int) -> bool:
    """Definition check: distinct rows, sorted, all columns normal, and
    the required k-canonical columns present."""
    if len(set(rows)) != len(rows):
        return False
    keys = [row_sort_key(r, n) for r in rows]
    if keys != sorted(keys):
        return False
    return canonical_columns(rows, n) is not None


def is_pseudocube(points: set[int], n: int) -> bool:
    """Matrix-based pseudocube test (Section 2): the point set is a
    pseudocube iff its sorted matrix is canonical.

    This is the paper's definition verbatim; the affine test is
    :meth:`Pseudocube.from_points`.  Both are exercised against each
    other in the property tests.
    """
    size = len(points)
    if size == 0 or size & (size - 1):
        return False
    rows = sorted(points, key=lambda p: row_sort_key(p, n))
    return is_canonical_matrix(rows, n)


def render_matrix(pc: Pseudocube, var: str = "c") -> str:
    """Pretty-print the canonical matrix in the style of figure 1."""
    rows = canonical_matrix(pc)
    header = "      " + " ".join(f"{var}{j}" for j in range(pc.n))
    lines = [header]
    for i, r in enumerate(rows):
        cells = " ".join(f"{b:>2}" for b in to_string(r, pc.n))
        lines.append(f"r{i:<4} {cells}")
    return "\n".join(lines)
