"""Bit-vector utilities.

Throughout the library a point of the Boolean space ``B^n`` is a Python
``int`` used as a bitmask: bit ``i`` holds the value of variable ``x_i``.
The same convention is used for GF(2) vectors (direction-space basis
vectors, EXOR-factor supports, ...).  These helpers keep the rest of the
code free of ad-hoc bit twiddling.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = [
    "bit",
    "bits_of",
    "from_bits",
    "get_bit",
    "set_bit",
    "clear_bit",
    "flip_bits",
    "lowest_bit_index",
    "highest_bit_index",
    "parity",
    "popcount",
    "mask_of_width",
    "to_string",
    "from_string",
    "all_points",
]


def bit(i: int) -> int:
    """Return the mask with only bit ``i`` set."""
    return 1 << i


def get_bit(v: int, i: int) -> int:
    """Return bit ``i`` of ``v`` (0 or 1)."""
    return (v >> i) & 1


def set_bit(v: int, i: int) -> int:
    """Return ``v`` with bit ``i`` set to 1."""
    return v | (1 << i)


def clear_bit(v: int, i: int) -> int:
    """Return ``v`` with bit ``i`` cleared."""
    return v & ~(1 << i)


def flip_bits(v: int, mask: int) -> int:
    """Return ``v`` with every bit in ``mask`` complemented.

    This is the point transformation ``alpha(s)`` of the paper, where
    ``mask`` is the characteristic vector of the variable subset alpha.
    """
    return v ^ mask


def popcount(v: int) -> int:
    """Number of set bits (== number of literals in an EXOR support)."""
    return v.bit_count()


def parity(v: int) -> int:
    """Parity (XOR of all bits) of ``v``."""
    return v.bit_count() & 1


def lowest_bit_index(v: int) -> int:
    """Index of the least-significant set bit.  ``v`` must be nonzero."""
    if v == 0:
        raise ValueError("lowest_bit_index of zero vector")
    return (v & -v).bit_length() - 1


def highest_bit_index(v: int) -> int:
    """Index of the most-significant set bit.  ``v`` must be nonzero."""
    if v == 0:
        raise ValueError("highest_bit_index of zero vector")
    return v.bit_length() - 1


def bits_of(v: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``v`` in increasing order."""
    while v:
        low = v & -v
        yield low.bit_length() - 1
        v ^= low


def from_bits(indices: Iterable[int]) -> int:
    """Build a mask from an iterable of bit indices."""
    mask = 0
    for i in indices:
        mask |= 1 << i
    return mask


def mask_of_width(n: int) -> int:
    """Mask with the ``n`` lowest bits set (the whole space ``B^n``)."""
    return (1 << n) - 1


def to_string(v: int, n: int) -> str:
    """Render ``v`` as the row of a matrix: ``x_0`` first (leftmost).

    This matches the column order of the paper's canonical matrices
    (figure 1): column ``c_i`` is variable ``x_i``.
    """
    return "".join(str((v >> i) & 1) for i in range(n))


def from_string(s: str) -> int:
    """Inverse of :func:`to_string` — leftmost character is ``x_0``."""
    v = 0
    for i, ch in enumerate(s):
        if ch == "1":
            v |= 1 << i
        elif ch != "0":
            raise ValueError(f"invalid bit character {ch!r} in {s!r}")
    return v


def all_points(n: int) -> range:
    """All points of ``B^n`` in increasing binary order."""
    return range(1 << n)
