"""Pseudocubes — affine subspaces of GF(2)^n.

A *pseudocube of degree m* (Section 2 of the paper) is a set of ``2^m``
points of ``B^n`` whose matrix is canonical up to a row permutation.
Algebraically this is exactly a coset of an ``m``-dimensional linear
subspace of GF(2)^n, and that is the representation used here:

* ``basis``  — RREF basis of the *direction space* (see
  :mod:`repro.core.gf2`); the pivot variables are the paper's
  **canonical variables**;
* ``anchor`` — the unique member point whose canonical variables are all
  zero.  Sorting the points as binary numbers with ``x_0`` most
  significant, the anchor is row 0 of the paper's canonical matrix.

The pair ``(basis, anchor)`` is a canonical form: two pseudocubes are
equal as point sets iff their representations are equal, so
``Pseudocube`` is hashable and cheap to deduplicate.

Theorem 1 of the paper — the union of two pseudocubes is a pseudocube
iff they have the same *structure* — translates to "iff they have the
same direction space", i.e. equal ``basis`` tuples (see
:mod:`repro.core.structure` for the proof obligations tested).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.core import gf2
from repro.core.bitvec import bits_of, mask_of_width, popcount

__all__ = ["Pseudocube", "NotAPseudocubeError"]


class NotAPseudocubeError(ValueError):
    """Raised when a point set is not a pseudocube (Section 2 check)."""


class Pseudocube:
    """An immutable pseudocube of ``B^n`` in canonical affine form."""

    __slots__ = ("n", "anchor", "basis", "_hash", "_pivot_mask")

    n: int
    anchor: int
    basis: tuple[int, ...]

    def __init__(self, n: int, anchor: int, basis: tuple[int, ...]):
        """Build from an already-normalized representation.

        Most callers should use :meth:`from_point`, :meth:`from_points`,
        :meth:`from_cube` or the algebraic operations instead; this
        constructor validates its inputs but does not normalize them.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if not 0 <= anchor < (1 << n):
            raise ValueError("anchor outside B^n")
        if not gf2.is_rref(basis):
            raise ValueError("basis is not in RREF form")
        if basis and basis[-1] >= (1 << n):
            raise ValueError("basis vector outside B^n")
        pivots = gf2.pivot_mask(basis)
        if anchor & pivots:
            raise ValueError("anchor must be zero on canonical variables")
        object.__setattr__(self, "n", n)
        object.__setattr__(self, "anchor", anchor)
        object.__setattr__(self, "basis", basis)
        object.__setattr__(self, "_hash", hash((n, anchor, basis)))
        object.__setattr__(self, "_pivot_mask", pivots)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Pseudocube is immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def _unsafe(cls, n: int, anchor: int, basis: tuple[int, ...]) -> "Pseudocube":
        """Validation-free constructor for internal hot loops.

        Callers must guarantee the representation invariants (RREF
        basis, anchor reduced).  The minimization inner loops create
        millions of pseudocubes from operations that preserve the
        invariants by construction; skipping validation there is the
        difference between minutes and hours on the paper's benchmarks.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "n", n)
        object.__setattr__(self, "anchor", anchor)
        object.__setattr__(self, "basis", basis)
        return self

    @classmethod
    def from_point(cls, n: int, point: int) -> "Pseudocube":
        """The degree-0 pseudocube containing a single point (a minterm)."""
        return cls(n, point, ())

    @classmethod
    def from_points(cls, n: int, points: Iterable[int]) -> "Pseudocube":
        """Build from an explicit point set, verifying it is a pseudocube.

        Raises :class:`NotAPseudocubeError` if the set is not a coset of
        a linear subspace (equivalently, if its matrix cannot be made
        canonical by any row permutation).
        """
        pts = set(points)
        if not pts:
            raise NotAPseudocubeError("empty point set")
        it = iter(pts)
        p0 = next(it)
        basis = gf2.rref(p ^ p0 for p in it)
        if (1 << len(basis)) != len(pts):
            raise NotAPseudocubeError(
                f"{len(pts)} points span dimension {len(basis)}: not a coset"
            )
        anchor = gf2.reduce_vector(basis, p0)
        return cls(n, anchor, basis)

    @classmethod
    def from_cube(cls, n: int, care_mask: int, values: int) -> "Pseudocube":
        """The classic cube fixing the variables in ``care_mask`` to ``values``.

        Cubes are the pseudocubes whose non-canonical columns are
        constant; the free (unfixed) variables become the canonical
        ones.
        """
        if values & ~care_mask:
            raise ValueError("values set outside the care mask")
        free = mask_of_width(n) & ~care_mask
        basis = tuple(1 << i for i in bits_of(free))
        return cls(n, values, basis)

    @classmethod
    def whole_space(cls, n: int) -> "Pseudocube":
        """The degree-n pseudocube ``B^n`` (constant-1 function)."""
        return cls(n, 0, tuple(1 << i for i in range(n)))

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def degree(self) -> int:
        """The degree ``m``: the pseudocube has ``2^m`` points."""
        return len(self.basis)

    def __len__(self) -> int:
        return 1 << len(self.basis)

    @property
    def canonical_mask(self) -> int:
        """Bitmask of the canonical variables (RREF pivots).

        Cached in a slot: computed eagerly by the validating
        constructor (which needs it anyway) and on first access for
        :meth:`_unsafe`-built instances (hot loops never pay for it).
        """
        try:
            return self._pivot_mask
        except AttributeError:
            mask = gf2.pivot_mask(self.basis)
            object.__setattr__(self, "_pivot_mask", mask)
            return mask

    def canonical_variables(self) -> tuple[int, ...]:
        """Indices of the canonical variables, increasing."""
        return tuple(bits_of(self.canonical_mask))

    def non_canonical_variables(self) -> tuple[int, ...]:
        """Indices of the non-canonical variables, increasing."""
        mask = mask_of_width(self.n) & ~self.canonical_mask
        return tuple(bits_of(mask))

    def __contains__(self, point: int) -> bool:
        return gf2.reduce_vector(self.basis, point ^ self.anchor) == 0

    def points(self) -> Iterator[int]:
        """Enumerate the member points (Gray-code order from the anchor)."""
        return gf2.span_points(self.basis, self.anchor)

    def is_cube(self) -> bool:
        """True iff this pseudocube is a classic cube (an SP product)."""
        return all(b == (b & -b) for b in self.basis)

    @property
    def num_literals(self) -> int:
        """Literal count of the CEX expression (the paper's cost unit).

        Each basis vector of weight ``w`` contributes its pivot to ``w-1``
        EXOR factors, and every non-canonical variable contributes one
        literal, so the count is available without building the CEX.
        """
        return sum(popcount(b) - 1 for b in self.basis) + (self.n - len(self.basis))

    # ------------------------------------------------------------------
    # Algebra (Proposition 1, Theorem 1)
    # ------------------------------------------------------------------

    def transform(self, alpha_mask: int) -> "Pseudocube":
        """The transformed set ``alpha(P)``: complement the variables in
        ``alpha_mask`` in every point.

        The direction space is unchanged; only the anchor moves
        (Proposition 1 of the paper is exercised with ``alpha`` a subset
        of the non-canonical variables, but the operation is defined for
        any ``alpha``).
        """
        anchor = gf2.reduce_vector(self.basis, self.anchor ^ alpha_mask)
        return Pseudocube(self.n, anchor, self.basis)

    def same_structure(self, other: "Pseudocube") -> bool:
        """Theorem 1 predicate: ``STR(P1) == STR(P2)``.

        Structure is a function of the direction space alone, so this is
        an O(degree) tuple comparison.
        """
        return self.n == other.n and self.basis == other.basis

    def union(self, other: "Pseudocube") -> "Pseudocube | None":
        """The union pseudocube of degree ``m+1``, or None.

        Returns None when the two pseudocubes do not satisfy Theorem 1
        (different structures) or are identical (union is not larger).
        This is the affine-form counterpart of the paper's Algorithm 1;
        the symbolic CEX-level algorithm lives in
        :mod:`repro.core.union` and is tested to agree with this one.
        """
        if self.basis != other.basis or self.n != other.n:
            return None
        if self.anchor == other.anchor:
            return None
        delta = self.anchor ^ other.anchor
        basis = gf2.insert_vector(self.basis, delta)
        anchor = gf2.reduce_vector(basis, self.anchor)
        return Pseudocube._unsafe(self.n, anchor, basis)

    def split(self, index: int) -> tuple["Pseudocube", "Pseudocube"]:
        """Split into two sub-pseudocubes of degree ``m-1`` along basis
        vector ``index``.

        The two halves have the same structure as each other, and their
        union is this pseudocube (the inverse of :meth:`union` for one
        particular hyperplane; all hyperplane splits are enumerated by
        :func:`repro.core.subcubes.sub_pseudocubes`).
        """
        if not 0 <= index < len(self.basis):
            raise IndexError("basis index out of range")
        removed = self.basis[index]
        rest = self.basis[:index] + self.basis[index + 1 :]
        low = Pseudocube(self.n, self.anchor, rest)
        high_anchor = gf2.reduce_vector(rest, self.anchor ^ removed)
        high = Pseudocube(self.n, high_anchor, rest)
        return low, high

    def contains_pseudocube(self, other: "Pseudocube") -> bool:
        """Set containment ``other ⊆ self``."""
        if self.n != other.n:
            return False
        if other.anchor not in self:
            return False
        return all(gf2.contains(self.basis, b) for b in other.basis)

    def intersect(self, other: "Pseudocube") -> "Pseudocube | None":
        """The intersection pseudocube, or None when disjoint.

        The intersection of two cosets is a coset of the intersection of
        the direction spaces (pseudocubes are closed under nonempty
        intersection, just as cubes are).
        """
        if self.n != other.n:
            raise ValueError("pseudocubes over different spaces")
        # Solve: anchor_a + V_a  ∩  anchor_b + V_b.  Work in the joint
        # space: find u ∈ V_a with anchor_a + u ∈ other.
        delta = self.anchor ^ other.anchor
        u = gf2.decompose(self.basis, other.basis, delta)
        if u is None:
            return None  # delta ∉ V_a + V_b: the cosets never meet
        # anchor_a ⊕ u lies in both cosets (u ∈ V_a, delta ⊕ u ∈ V_b).
        point = self.anchor ^ u
        inter = gf2.intersect_spaces(self.basis, other.basis, self.n)
        anchor = gf2.reduce_vector(inter, point)
        return Pseudocube(self.n, anchor, inter)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pseudocube):
            return NotImplemented
        return (
            self.n == other.n
            and self.anchor == other.anchor
            and self.basis == other.basis
        )

    def __hash__(self) -> int:
        # Lazy for :meth:`_unsafe`-built instances: generation creates
        # far more pseudocubes than are ever hashed, so the tuple hash
        # is paid on first use (and cached) rather than at build time.
        try:
            return self._hash
        except AttributeError:
            h = hash((self.n, self.anchor, self.basis))
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self) -> str:
        return f"Pseudocube(n={self.n}, anchor={self.anchor:#x}, basis={self.basis})"

    def __str__(self) -> str:
        from repro.core.cex import cex_of  # local import: cex depends on us

        return str(cex_of(self))
