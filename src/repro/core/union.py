"""Algorithm 1 of the paper: symbolic union of two CEX expressions.

Given the CEX expressions of two pseudocubes with the same structure,
build the CEX expression of their union without touching point sets.

Let ``alpha`` be the set of non-canonical variables whose factors differ
in complementation between the two expressions, and ``x_ik`` the
variable of smallest index in ``alpha``.  Then in ``CEX(P1 ∪ P2)``:

* the factor of ``x_ik`` disappears (``x_ik`` becomes canonical);
* every other factor of a variable in ``alpha`` becomes
  ``NORM_EXOR(f², f¹_ik)``;
* factors of variables outside ``alpha`` are unchanged.

The affine-form equivalent is :meth:`repro.core.pseudocube.Pseudocube.union`
("insert ``anchor1 ⊕ anchor2`` into the basis"); the test suite checks
the two agree factor-for-factor on random pseudocube pairs.
"""

from __future__ import annotations

from repro.core.cex import CexExpression
from repro.core.exor import norm_exor

__all__ = ["cex_union", "UnionError"]


class UnionError(ValueError):
    """Raised when the two expressions cannot be unified (Theorem 1)."""


def cex_union(cex1: CexExpression, cex2: CexExpression) -> CexExpression:
    """Union of two same-structure CEX expressions (Algorithm 1).

    Raises :class:`UnionError` when the structures differ or the
    expressions are identical (the union of a pseudocube with itself is
    not a pseudocube of higher degree).
    """
    if cex1.n != cex2.n:
        raise UnionError("expressions over different spaces")
    if cex1.structure() != cex2.structure():
        raise UnionError("different structures: union is not a pseudocube")
    differing = [
        j
        for j, (f1, f2) in enumerate(zip(cex1.factors, cex2.factors))
        if f1.parity != f2.parity
    ]
    if not differing:
        raise UnionError("identical expressions: nothing to unify")
    k = differing[0]
    f1_k = cex1.factors[k]
    alpha = set(differing)
    new_factors = []
    for j, f2 in enumerate(cex2.factors):
        if j == k:
            continue
        if j in alpha:
            new_factors.append(norm_exor(f2, f1_k))
        else:
            new_factors.append(f2)
    return CexExpression(cex1.n, tuple(new_factors))
