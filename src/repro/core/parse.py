"""Parsing of SPP / CEX expressions from text.

The inverse of the library's printers: accepts the notation used
throughout the repository (and the paper's, transliterated to ASCII):

* literals: ``x0``, ``x13``, complemented as ``x0'`` (postfix) or
  ``~x0`` / ``!x0`` (prefix);
* EXOR factors: ``(x0 (+) x2 (+) x5')`` — ``(+)``, ``^`` and ``(+)``'s
  unicode sibling ``⊕`` are all accepted;
* products: factors joined by ``.`` or ``*`` (or simple adjacency of
  parenthesised factors);
* sums: products joined by ``+``.

``parse_cex`` returns a :class:`CexExpression`; ``parse_spp`` returns
an :class:`SppForm` (each product converted to its pseudocube, so the
result is normalized regardless of how the input was written).
"""

from __future__ import annotations

import re

from repro.core.cex import CexExpression
from repro.core.exor import ExorFactor
from repro.core.spp_form import SppForm

__all__ = ["parse_cex", "parse_spp", "ExpressionSyntaxError"]


class ExpressionSyntaxError(ValueError):
    """The expression text could not be parsed."""


_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<xor>\(\+\)|\^|⊕)"  # must precede lparen: "(+)" starts with "("
    r"|(?P<lparen>\()"
    r"|(?P<rparen>\))"
    r"|(?P<and>[.*·])"
    r"|(?P<or>\+)"
    r"|(?P<not>[~!])"
    r"|(?P<var>[A-Za-z_][A-Za-z_]*\d+)"
    r"|(?P<prime>')"
    r"|(?P<const>[01])"
    r")"
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ExpressionSyntaxError(f"cannot tokenize at {remainder[:15]!r}")
        pos = match.end()
        kind = match.lastgroup
        assert kind is not None
        tokens.append((kind, match.group(kind)))
    return tokens


class _Parser:
    """Recursive-descent parser for  sum := product (+ product)* ."""

    def __init__(self, tokens: list[tuple[str, str]], var: str):
        self.tokens = tokens
        self.pos = 0
        self.var = var

    def peek(self) -> str | None:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos][0]
        return None

    def take(self, kind: str) -> str:
        if self.peek() != kind:
            raise ExpressionSyntaxError(
                f"expected {kind}, found {self.tokens[self.pos:][:1] or 'end'}"
            )
        value = self.tokens[self.pos][1]
        self.pos += 1
        return value

    def variable_index(self, token: str) -> int:
        match = re.fullmatch(rf"{re.escape(self.var)}(\d+)", token)
        if match is None:
            raise ExpressionSyntaxError(
                f"variable {token!r} does not match prefix {self.var!r}"
            )
        return int(match.group(1))

    # literal := [~|!] var ['] | const
    def parse_literal(self) -> ExorFactor:
        negate = 0
        while self.peek() == "not":
            self.take("not")
            negate ^= 1
        if self.peek() == "const":
            value = int(self.take("const"))
            return ExorFactor(0, value ^ negate)
        index = self.variable_index(self.take("var"))
        if self.peek() == "prime":
            self.take("prime")
            negate ^= 1
        return ExorFactor(1 << index, negate)

    # factor := literal | '(' literal ((+) literal)* ')'
    def parse_factor(self) -> ExorFactor:
        if self.peek() != "lparen":
            return self.parse_literal()
        self.take("lparen")
        factor = self.parse_literal()
        while self.peek() == "xor":
            self.take("xor")
            factor = factor.xor(self.parse_literal())
        self.take("rparen")
        return factor

    # product := factor (('.'|'*')? factor)*
    def parse_product(self, n: int) -> CexExpression:
        factors = [self.parse_factor()]
        while True:
            if self.peek() == "and":
                self.take("and")
                factors.append(self.parse_factor())
            elif self.peek() in ("lparen", "var", "not", "const"):
                factors.append(self.parse_factor())
            else:
                break
        return CexExpression(n, tuple(factors))

    # sum := product ('+' product)*
    def parse_sum(self, n: int) -> list[CexExpression]:
        products = [self.parse_product(n)]
        while self.peek() == "or":
            self.take("or")
            products.append(self.parse_product(n))
        if self.pos != len(self.tokens):
            raise ExpressionSyntaxError(
                f"unconsumed input at token {self.tokens[self.pos]}"
            )
        return products


def _infer_n(products: list[CexExpression]) -> int:
    highest = 0
    for product in products:
        for factor in product.factors:
            if factor.support:
                highest = max(highest, factor.support.bit_length())
    return highest


def parse_cex(text: str, n: int | None = None, var: str = "x") -> CexExpression:
    """Parse a single product of EXOR factors.

    ``n`` defaults to one past the highest variable index mentioned.
    """
    parser = _Parser(_tokenize(text), var)
    width = n or 1
    products = parser.parse_sum(width)
    if len(products) != 1:
        raise ExpressionSyntaxError("expected a single product, found a sum")
    inferred = max(_infer_n(products), 1)
    if n is None:
        n = inferred
    elif inferred > n:
        raise ExpressionSyntaxError(f"variable index exceeds n={n}")
    return CexExpression(n, products[0].factors)


def parse_spp(text: str, n: int | None = None, var: str = "x") -> SppForm:
    """Parse a sum of pseudoproducts into a normalized :class:`SppForm`.

    Products that are unsatisfiable (e.g. ``x0 . x0'``) are rejected.
    """
    parser = _Parser(_tokenize(text), var)
    products = parser.parse_sum(1)
    inferred = max(_infer_n(products), 1)
    if n is None:
        n = inferred
    elif inferred > n:
        raise ExpressionSyntaxError(f"variable index exceeds n={n}")
    pseudoproducts = []
    for product in products:
        widened = CexExpression(n, product.factors)
        pseudoproducts.append(widened.to_pseudocube())
    return SppForm(n, tuple(pseudoproducts))
