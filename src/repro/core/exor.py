"""EXOR factors — the atoms of pseudoproduct expressions.

An EXOR factor is a single variable or a string of variables connected
by EXORs, possibly with complementations.  Since ``x̄ ⊕ y = x ⊕ ȳ =
(x ⊕ y)'``, only the *parity* of the number of complementations matters,
so a factor is canonically a pair ``(support, parity)``:

* ``support`` — bitmask of the variables in the factor;
* ``parity``  — 0 or 1; the factor's value on a point ``s`` is
  ``XOR(s & support) ^ parity``.

With this convention a factor that must evaluate to **1** on a
pseudocube displays its complement bar (if any) on its highest-index
variable, which by the RREF pivot convention is exactly the factor's
*non-canonical* variable — matching rule 2 of Definition 1 in the paper.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.bitvec import bits_of, highest_bit_index, parity as bit_parity, popcount

__all__ = ["ExorFactor", "norm_exor"]


@dataclass(frozen=True, slots=True)
class ExorFactor:
    """An EXOR of literals, canonicalized to ``(support, parity)``.

    ``ExorFactor(0b101, 1)`` over variables named ``x`` renders as
    ``(x0 ⊕ x̄2)`` and evaluates to ``x0 ^ x2 ^ 1``.
    """

    support: int
    parity: int = 0

    def __post_init__(self) -> None:
        if self.support < 0:
            raise ValueError("support mask must be non-negative")
        if self.parity not in (0, 1):
            raise ValueError("parity must be 0 or 1")

    @classmethod
    def from_literals(
        cls, positive: Iterable[int] = (), negative: Iterable[int] = ()
    ) -> "ExorFactor":
        """Build a factor from iterables of positive/negative literal indices.

        A variable appearing in both lists contributes ``x ⊕ x̄ = 1``,
        i.e. it cancels out of the support and flips the parity.
        """
        support = 0
        par = 0
        for i in positive:
            support ^= 1 << i
        for i in negative:
            support ^= 1 << i
            par ^= 1
        return cls(support, par)

    @property
    def num_literals(self) -> int:
        """Number of literals (variable occurrences) in the factor."""
        return popcount(self.support)

    @property
    def is_constant(self) -> bool:
        """True for the degenerate factors 0 and 1 (empty support)."""
        return self.support == 0

    def evaluate(self, point: int) -> int:
        """Value of the factor (0 or 1) on ``point``."""
        return bit_parity(point & self.support) ^ self.parity

    def xor(self, other: "ExorFactor") -> "ExorFactor":
        """EXOR of two factors, normalized (``NORM_EXOR`` of the paper)."""
        return ExorFactor(self.support ^ other.support, self.parity ^ other.parity)

    def complement(self) -> "ExorFactor":
        """The complemented factor (flip the parity)."""
        return ExorFactor(self.support, self.parity ^ 1)

    def structure(self) -> int:
        """The factor's structure: its support without complementations."""
        return self.support

    def variables(self) -> tuple[int, ...]:
        """Indices of the variables in the factor, increasing."""
        return tuple(bits_of(self.support))

    def to_string(self, var: str = "x", bar_variable: int | None = None) -> str:
        """Render the factor.

        The complement bar (when ``parity == 1``) is drawn on
        ``bar_variable`` if given, else on the highest-index variable —
        the non-canonical variable of a CEX factor.
        """
        if self.support == 0:
            return "1" if self.parity else "0"
        if bar_variable is None:
            bar_variable = highest_bit_index(self.support)
        parts = []
        for i in bits_of(self.support):
            name = f"{var}{i}"
            if self.parity and i == bar_variable:
                name += "'"
            parts.append(name)
        body = " (+) ".join(parts)
        if len(parts) == 1:
            return parts[0]
        return f"({body})"

    def __str__(self) -> str:
        return self.to_string()


def norm_exor(f1: ExorFactor, f2: ExorFactor) -> ExorFactor:
    """The paper's ``NORM_EXOR``: normalized EXOR of two EXOR factors.

    Example (Section 3.1): ``NORM_EXOR(x0 ⊕ x2 ⊕ x5, x0 ⊕ x̄1)``
    is ``x1 ⊕ x2 ⊕ x̄5``.
    """
    return f1.xor(f2)
