"""Structured error taxonomy and CLI exit codes.

Every failure the toolchain can report deliberately goes through one of
these classes, so callers (and shell scripts driving the CLI) can react
to *what went wrong* instead of pattern-matching message strings:

=====================  ==========  =============================================
class                  exit code   meaning
=====================  ==========  =============================================
``ReproError``         70          base class; unclassified internal failure
``UsageError``         2           bad invocation (also used for verification
                                   failures, matching historical behaviour)
``ParseError``         3           malformed input file (PLA, JSON artifacts);
                                   carries ``file``/``line`` context
``CorruptRecordError`` 4           an on-disk record failed its checksum or
                                   could not be decoded
``QuarantinedJobError`` 5          a job exceeded its crash cap and was
                                   quarantined by the supervisor
``BudgetExceeded``     6           a cooperative budget (deadline, memory
                                   ceiling or tick cap) ran out mid-computation
``Cancelled``          7           the work was cancelled through its
                                   :class:`repro.budget.CancelToken`
``Overloaded``         8           the service shed the request (admission
                                   queue full); carries ``retry_after``
``IntegrityError``     9           a result failed independent verification
                                   (wrong cover, cost mismatch, bad
                                   certificate); carries the
                                   :class:`~repro.verify.VerificationReport`
``BatchFailedError``   1           a batch finished but some jobs failed
=====================  ==========  =============================================

``ParseError`` and ``CorruptRecordError`` also subclass ``ValueError``
so pre-taxonomy call sites (``except ValueError``) keep working.
"""

from __future__ import annotations

__all__ = [
    "EXIT_OK",
    "EXIT_BATCH_FAILED",
    "EXIT_USAGE",
    "EXIT_PARSE",
    "EXIT_CORRUPT",
    "EXIT_QUARANTINED",
    "EXIT_BUDGET",
    "EXIT_CANCELLED",
    "EXIT_OVERLOADED",
    "EXIT_INTEGRITY",
    "EXIT_INTERNAL",
    "ReproError",
    "UsageError",
    "ParseError",
    "CorruptRecordError",
    "QuarantinedJobError",
    "BudgetExceeded",
    "Cancelled",
    "Overloaded",
    "IntegrityError",
    "BatchFailedError",
    "exit_code_for",
]

EXIT_OK = 0
EXIT_BATCH_FAILED = 1
EXIT_USAGE = 2
EXIT_PARSE = 3
EXIT_CORRUPT = 4
EXIT_QUARANTINED = 5
EXIT_BUDGET = 6
EXIT_CANCELLED = 7
EXIT_OVERLOADED = 8
EXIT_INTEGRITY = 9
EXIT_INTERNAL = 70  # sysexits.h EX_SOFTWARE


class ReproError(Exception):
    """Base of the structured taxonomy; carries a CLI exit code."""

    exit_code = EXIT_INTERNAL
    code = "internal"


class UsageError(ReproError):
    """Bad invocation: missing arguments, impossible flag combinations."""

    exit_code = EXIT_USAGE
    code = "usage"


class ParseError(ReproError, ValueError):
    """Malformed input, with optional file/line context.

    ``str()`` renders ``file:line: message`` when context is present, so
    CLI consumers get editor-clickable locations for free.
    """

    exit_code = EXIT_PARSE
    code = "parse"

    def __init__(self, message: str, *, file: str | None = None,
                 line: int | None = None):
        super().__init__(message)
        self.message = message
        self.file = file
        self.line = line

    def __str__(self) -> str:
        prefix = ""
        if self.file is not None:
            prefix = f"{self.file}:"
            if self.line is not None:
                prefix += f"{self.line}:"
            prefix += " "
        elif self.line is not None:
            prefix = f"line {self.line}: "
        return prefix + self.message


class CorruptRecordError(ReproError, ValueError):
    """An on-disk record failed its checksum or could not be decoded.

    Persistence layers catch this, quarantine the file, and recompute;
    it only escapes to the CLI when corruption is unrecoverable.
    """

    exit_code = EXIT_CORRUPT
    code = "corrupt"

    def __init__(self, message: str, *, path: str | None = None):
        super().__init__(message)
        self.path = path


class QuarantinedJobError(ReproError):
    """A job crashed its worker more times than the supervisor allows."""

    exit_code = EXIT_QUARANTINED
    code = "quarantined"


class BudgetExceeded(ReproError):
    """A cooperative budget ran out while the computation was running.

    ``reason`` says which ceiling was hit: ``"deadline"``, ``"memory"``
    or ``"ticks"``.  Raised from :meth:`repro.budget.Budget.tick` /
    :meth:`~repro.budget.Budget.check`, so it surfaces from *inside*
    the minimization inner loops — on any thread, on any platform —
    rather than relying on ``SIGALRM`` delivery.
    """

    exit_code = EXIT_BUDGET
    code = "budget-exceeded"

    def __init__(self, message: str, *, reason: str = "deadline"):
        super().__init__(message)
        self.reason = reason


class Cancelled(BudgetExceeded):
    """The work's :class:`repro.budget.CancelToken` was cancelled.

    Subclasses :class:`BudgetExceeded` so every budget-aware ``except``
    site treats cancellation as "stop now", but keeps a distinct exit
    code and taxonomy code for callers that must tell a shed/abandoned
    request from an exhausted budget.
    """

    exit_code = EXIT_CANCELLED
    code = "cancelled"

    def __init__(self, message: str = "cancelled"):
        super().__init__(message, reason="cancelled")


class Overloaded(ReproError):
    """The service refused admission (queue full or shedding mode).

    ``retry_after`` is the advisory backoff in seconds that
    ``repro serve`` surfaces as the ``Retry-After`` response header.
    """

    exit_code = EXIT_OVERLOADED
    code = "overloaded"

    def __init__(self, message: str, *, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class IntegrityError(ReproError):
    """A result failed independent verification.

    Raised wherever the integrity layer (:mod:`repro.integrity`)
    re-checks a minimization result against its specification: a form
    that misses on-set points or covers off-set points, a recomputed
    literal cost that disagrees with the solver's claim, or a
    certificate whose hashes do not match the record they travel with.

    ``report`` is the :class:`repro.verify.VerificationReport` when the
    failure has semantic counterexamples (``None`` for pure hash/cost
    mismatches); ``detail`` is a JSON-compatible dict with whatever
    structured context the check site had (recomputed vs claimed cost,
    offending hashes, cache path) — serving layers surface it in error
    bodies instead of an opaque message.
    """

    exit_code = EXIT_INTEGRITY
    code = "integrity"

    def __init__(self, message: str, *, report=None,
                 detail: dict | None = None):
        super().__init__(message)
        self.report = report
        self.detail = dict(detail) if detail else {}


class BatchFailedError(ReproError):
    """A batch ran to completion but one or more jobs have no result."""

    exit_code = EXIT_BATCH_FAILED
    code = "batch-failed"


def exit_code_for(exc: BaseException) -> int:
    """Map any exception to the CLI exit code it should produce."""
    if isinstance(exc, ReproError):
        return exc.exit_code
    if isinstance(exc, SystemExit):
        code = exc.code
        return code if isinstance(code, int) else EXIT_USAGE
    return EXIT_INTERNAL
