"""repro — SPP logic minimization with partition tries.

A complete reproduction of V. Ciriani, *Logic Minimization using
Exclusive OR Gates* (DAC 2001): pseudocube algebra, partition tries,
exact (Algorithm 2) and heuristic (Algorithm 3, ``SPP_k``) Sum of
Pseudoproducts minimization, the naive baseline of Luccio & Pagli, a
Quine–McCluskey SP baseline, and the benchmark harness regenerating the
paper's tables and figures.

Quick start::

    from repro import BoolFunc, minimize_spp, minimize_sp

    f = BoolFunc.from_lambda(4, lambda p: bin(p).count("1") % 2 == 1)
    spp = minimize_spp(f)
    sp = minimize_sp(f)
    print(spp.form, spp.num_literals, "vs SP", sp.num_literals)
"""

from repro.boolfunc import BoolFunc, MultiBoolFunc, parse_pla, parse_pla_file, write_pla
from repro.budget import Budget, CancelToken
from repro.core import (
    CexExpression,
    ExorFactor,
    Pseudocube,
    SppForm,
    cex_of,
    cex_union,
    structure_of,
    sub_pseudocubes,
)
from repro.core.parse import parse_cex, parse_spp
from repro.export import spp_to_blif, spp_to_verilog
from repro.minimize import (
    Cube,
    generate_eppp,
    generate_eppp_naive,
    minimize_aox,
    minimize_sp,
    minimize_spp,
    minimize_spp_bounded,
    minimize_spp_k,
    prime_implicants,
)
from repro.minimize.multi import minimize_spp_multi
from repro.serialize import dumps as dump_json
from repro.serialize import loads as load_json
from repro.trie import PartitionTrie, StructureIndex
from repro.verify import assert_equivalent, verify_form

__version__ = "1.0.0"

__all__ = [
    "BoolFunc",
    "Budget",
    "CancelToken",
    "CexExpression",
    "Cube",
    "ExorFactor",
    "MultiBoolFunc",
    "PartitionTrie",
    "Pseudocube",
    "SppForm",
    "StructureIndex",
    "assert_equivalent",
    "cex_of",
    "cex_union",
    "dump_json",
    "generate_eppp",
    "generate_eppp_naive",
    "load_json",
    "minimize_aox",
    "minimize_sp",
    "minimize_spp",
    "minimize_spp_bounded",
    "minimize_spp_k",
    "minimize_spp_multi",
    "parse_cex",
    "parse_pla",
    "parse_pla_file",
    "parse_spp",
    "prime_implicants",
    "spp_to_blif",
    "spp_to_verilog",
    "structure_of",
    "sub_pseudocubes",
    "verify_form",
    "write_pla",
]
