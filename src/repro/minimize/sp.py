"""Two-level (SP) minimization — the paper's comparison baseline.

Quine–McCluskey prime implicants + literal-cost set covering.  The SP
columns of Tables 1 and 3 (``#PI``, ``#L``, ``#P``) come from here, and
the heuristic of Section 3.4 takes the prime implicant set as input.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.boolfunc.function import BoolFunc
from repro.budget import Budget
from repro.core.spp_form import SppForm
from repro.kernels import build_cube_problem
from repro.minimize import covering as cov
from repro.minimize.qm import Cube, prime_implicants

__all__ = ["SpResult", "minimize_sp"]


@dataclass
class SpResult:
    """Outcome of a two-level minimization."""

    form: SppForm
    primes: list[Cube]
    covering_optimal: bool
    seconds: float
    # Mincov reduction report for the covering step, when one was produced.
    covering_stats: dict | None = None

    @property
    def num_primes(self) -> int:
        """Table 1's #PI column."""
        return len(self.primes)

    @property
    def num_literals(self) -> int:
        """Table 1's #L column (SP side)."""
        return self.form.num_literals

    @property
    def num_products(self) -> int:
        """Table 1's #P column."""
        return self.form.num_pseudoproducts


def minimize_sp(
    func: BoolFunc, *, covering: str = "greedy", budget: Budget | None = None
) -> SpResult:
    """Minimize ``func`` as a sum of products."""
    t0 = time.perf_counter()
    primes = prime_implicants(func)
    if not func.on_set:
        return SpResult(SppForm(func.n, ()), primes, True, time.perf_counter() - t0)
    if budget is not None:
        budget.check()
    rows = sorted(func.on_set)
    problem = build_cube_problem(
        rows,
        primes,
        func.n,
        cost_of=lambda c: max(c.num_literals(func.n), 1),
        budget=budget,
    )
    solution = cov.solve(problem, mode=covering, budget=budget)
    form = SppForm(
        func.n, tuple(c.to_pseudocube(func.n) for c in solution.payloads)
    )
    stats = solution.stats.as_dict() if solution.stats is not None else None
    return SpResult(
        form, primes, solution.optimal, time.perf_counter() - t0, stats
    )
