"""Mincov-style covering core — reduction fixpoint, components, lifting.

The classical unate-covering reductions (Quine–McCluskey tradition;
see PAPERS.md on computer codes for the QM method) shrink a covering
matrix *before and during* search:

* **essential columns** — a row covered by exactly one column forces
  that column into every feasible cover;
* **row dominance** — a row whose covering-column set is a superset of
  another row's is covered for free once the dominating (smaller) row
  is covered, so it can be dropped;
* **column dominance** — a column whose row set (restricted to the
  still-active rows) is a subset of a no-more-expensive column's can be
  dropped: any cover using it can swap in the dominator at no extra
  cost.

Iterating the three to a **fixpoint** leaves the *cyclic core* — the
part branch-and-bound actually has to search.  The core is then split
into **connected components** (row/column groups sharing no coverage)
that are solved independently, and the component B&B re-applies the
fixpoint at every search node (the classical *mincov* loop), so forced
columns never consume branching depth.

Everything here works on :class:`~repro.minimize.covering.CoveringProblem`
bit-masks and lifts solutions back to original column indices/payloads
via explicit remap tables.  The public covering API
(:func:`repro.minimize.covering.solve_greedy` / ``solve_exact`` /
``solve``) routes through this module; per-component greedy/B&B
primitives stay in :mod:`repro.minimize.covering`.

Cost model note: the greedy path runs only the *light* reduction
(essential columns, empty columns, components) — on EPPP candidate
sets, columns are maximal and pairwise dominance almost never fires,
so the O(columns·rows) dominance passes would cost more than they
save.  The exact and auto paths run the full fixpoint: there the
reductions shrink the search space itself, which is worth far more
than their construction cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, TypeVar

from repro.budget import Budget
from repro.minimize import covering as _cov
from repro.minimize.covering import CoveringProblem, CoveringSolution

__all__ = [
    "ReductionStats",
    "ReducedCore",
    "reduce_problem",
    "split_components",
    "solve_greedy",
    "solve_exact",
    "solve_auto",
]

T = TypeVar("T")

# Auto mode solves a component exactly when its (reduced) size is below
# these bounds — tuned against the cyclic core, not the raw matrix, so
# an instance whose core collapses is proved optimal even when the raw
# matrix would have looked hopeless to the old raw-size threshold.
AUTO_EXACT_MAX_ROWS = 96
AUTO_EXACT_MAX_COLUMNS = 2500
AUTO_NODE_LIMIT = 20_000

# Per-node column dominance is O(active columns × rows); above this
# many active columns a node runs only the cheap essential fixpoint.
NODE_DOMINANCE_MAX_COLUMNS = 768


@dataclass
class ReductionStats:
    """What the reduction fixpoint did to a covering matrix."""

    rows: int
    columns: int
    core_rows: int
    core_columns: int
    essential: int
    dominated_rows: int
    dominated_columns: int
    components: int
    passes: int
    dominance: bool

    def as_dict(self) -> dict[str, Any]:
        return {
            "rows": self.rows,
            "columns": self.columns,
            "core_rows": self.core_rows,
            "core_columns": self.core_columns,
            "essential": self.essential,
            "dominated_rows": self.dominated_rows,
            "dominated_columns": self.dominated_columns,
            "components": self.components,
            "passes": self.passes,
            "dominance": self.dominance,
        }


@dataclass
class ReducedCore:
    """The cyclic core left by :func:`reduce_problem`.

    ``forced`` are original column indices every feasible cover must
    contain (essential columns, accumulated across fixpoint passes).
    ``row_ids``/``col_ids`` map core positions back to original row
    bits / column indices; ``masks`` are the surviving columns
    re-indexed into core row positions.
    """

    forced: list[int]
    row_ids: list[int]
    col_ids: list[int]
    masks: list[int]
    costs: list[int]
    stats: ReductionStats


def reduce_problem(
    problem: CoveringProblem[T],
    *,
    budget: Budget | None = None,
    dominance: bool = True,
) -> ReducedCore:
    """Run the reduction fixpoint and return the cyclic core.

    With ``dominance=False`` only the cheap passes run (essential
    columns and empty columns) — the greedy path's configuration.  The
    problem must be feasible (callers check); an infeasible matrix
    raises ``ValueError``.
    """
    masks = problem.column_masks
    costs = problem.costs
    nrows = problem.num_rows
    ncols = len(masks)
    active_rows = problem.universe
    active_cols = (1 << ncols) - 1 if ncols else 0
    forced: list[int] = []
    essential = dominated_rows = dominated_cols = 0
    passes = 0

    row_cols: list[int] | None = None
    if dominance:
        # Column-index bitset per row, built once; all later passes
        # restrict it with the live ``active_cols``.
        row_cols = [0] * nrows
        for j, m in enumerate(masks):
            bit = 1 << j
            mm = m
            while mm:
                low = mm & -mm
                mm ^= low
                row_cols[low.bit_length() - 1] |= bit
        if budget is not None:
            budget.tick(ncols)

    changed = True
    while changed and active_rows:
        changed = False
        passes += 1
        if budget is not None:
            budget.tick(max(active_cols.bit_count(), 1))

        # -- essential columns -------------------------------------------
        if row_cols is None:
            # Transpose-free detection: ``once`` accumulates rows seen at
            # least once, ``twice`` at least twice; their difference is
            # the rows with a unique covering column.
            once = twice = 0
            m = active_cols
            while m:
                low = m & -m
                m ^= low
                cm = masks[low.bit_length() - 1] & active_rows
                twice |= once & cm
                once |= cm
            unique = once & ~twice
            if unique:
                m = active_cols
                while m:
                    low = m & -m
                    m ^= low
                    j = low.bit_length() - 1
                    if masks[j] & unique & active_rows:
                        forced.append(j)
                        essential += 1
                        active_cols &= ~low
                        active_rows &= ~masks[j]
                        changed = True
        else:
            m = active_rows
            while m:
                low = m & -m
                m ^= low
                if not (active_rows & low):
                    continue  # removed by an earlier forcing this pass
                rc = row_cols[low.bit_length() - 1] & active_cols
                if rc == 0:
                    raise ValueError("covering problem is infeasible")
                if rc & (rc - 1) == 0:
                    j = rc.bit_length() - 1
                    forced.append(j)
                    essential += 1
                    active_cols &= ~rc
                    active_rows &= ~masks[j]
                    changed = True

        if not active_rows:
            break

        # -- row dominance -----------------------------------------------
        if dominance and row_cols is not None:
            rows = []
            m = active_rows
            while m:
                low = m & -m
                m ^= low
                r = low.bit_length() - 1
                rows.append((r, row_cols[r] & active_cols))
            rows.sort(key=lambda t: t[1].bit_count())
            kept: list[int] = []  # column-set masks of surviving rows
            for r, rc in rows:
                if any(krc & ~rc == 0 for krc in kept):
                    active_rows &= ~(1 << r)
                    dominated_rows += 1
                    changed = True
                else:
                    kept.append(rc)

        # -- column dominance (and empty columns) ------------------------
        if dominance and row_cols is not None:
            order = []
            m = active_cols
            while m:
                low = m & -m
                m ^= low
                order.append(low.bit_length() - 1)
            if budget is not None:
                budget.tick(max(len(order), 1))
            amask = {j: masks[j] & active_rows for j in order}
            pcount = {j: amask[j].bit_count() for j in order}
            for j in order:
                mj = amask[j]
                if mj == 0:
                    active_cols &= ~(1 << j)
                    dominated_cols += 1
                    changed = True
                    continue
                # Columns covering every row of j: the intersection of
                # the per-row column sets over j's rows.
                dom = active_cols
                mm = mj
                while mm:
                    low = mm & -mm
                    mm ^= low
                    dom &= row_cols[low.bit_length() - 1]
                    if dom & (dom - 1) == 0:
                        break  # only j itself can remain
                dom &= ~(1 << j)
                cj = costs[j]
                pj = pcount[j]
                dd = dom
                while dd:
                    low = dd & -dd
                    dd ^= low
                    k = low.bit_length() - 1
                    ck = costs[k]
                    # Strictly better, or equal cost with strictly more
                    # coverage, or a fully tied twin with a lower index
                    # (exactly one member of a twin group survives).
                    if ck < cj or (
                        ck == cj
                        and (pcount[k] > pj or (pcount[k] == pj and k < j))
                    ):
                        active_cols &= ~(1 << j)
                        dominated_cols += 1
                        changed = True
                        break
        else:
            # Light path: still drop columns with no remaining coverage
            # so components and greedy never scan them.
            m = active_cols
            while m:
                low = m & -m
                m ^= low
                if masks[low.bit_length() - 1] & active_rows == 0:
                    active_cols &= ~low
                    dominated_cols += 1

    # -- build the core (compressed row space) ---------------------------
    if active_rows == problem.universe and not forced and not dominated_cols:
        # Nothing eliminated: the core IS the problem — skip the per-bit
        # recompression entirely (this is the common case on EPPP
        # matrices, whose columns are maximal, and it keeps the light
        # reduction out of the greedy hot path's budget).
        stats = ReductionStats(
            rows=nrows,
            columns=ncols,
            core_rows=nrows,
            core_columns=ncols,
            essential=0,
            dominated_rows=0,
            dominated_columns=0,
            components=1 if nrows else 0,
            passes=passes,
            dominance=dominance,
        )
        return ReducedCore(
            [], list(range(nrows)), list(range(ncols)),
            list(masks), list(costs), stats,
        )
    row_ids: list[int] = []
    m = active_rows
    while m:
        low = m & -m
        m ^= low
        row_ids.append(low.bit_length() - 1)
    pos_of = {r: i for i, r in enumerate(row_ids)}
    identity_rows = active_rows == problem.universe
    col_ids: list[int] = []
    core_masks: list[int] = []
    core_costs: list[int] = []
    m = active_cols
    while m:
        low = m & -m
        m ^= low
        j = low.bit_length() - 1
        cm = masks[j] & active_rows
        if cm == 0:
            continue
        if identity_rows:
            packed = cm
        else:
            packed = 0
            mm = cm
            while mm:
                lw = mm & -mm
                mm ^= lw
                packed |= 1 << pos_of[lw.bit_length() - 1]
        col_ids.append(j)
        core_masks.append(packed)
        core_costs.append(costs[j])
    stats = ReductionStats(
        rows=nrows,
        columns=ncols,
        core_rows=len(row_ids),
        core_columns=len(col_ids),
        essential=essential,
        dominated_rows=dominated_rows,
        dominated_columns=dominated_cols,
        components=1 if row_ids else 0,
        passes=passes,
        dominance=dominance,
    )
    return ReducedCore(forced, row_ids, col_ids, core_masks, core_costs, stats)


def split_components(num_rows: int, masks: list[int]) -> list[int]:
    """Connected components of a core as row bit-masks.

    Two rows are connected when some column covers both; components are
    returned sorted by their lowest row position, and together they
    partition ``range(num_rows)`` exactly (rows touched by no column
    would be infeasible and cannot occur in a core).
    """
    comps: list[int] = []
    for m in masks:
        if m == 0:
            continue
        merged = m
        keep = []
        for c in comps:
            if c & merged:
                merged |= c
            else:
                keep.append(c)
        keep.append(merged)
        comps = keep
    comps.sort(key=lambda c: c & -c)
    return comps


def _component_problem(
    core: ReducedCore, comp: int
) -> tuple[CoveringProblem[int], list[int], list[int]]:
    """A core component as its own problem.

    Payloads are *original* column indices, so solutions lift without a
    remap step.  Returns ``(problem, local_row_ids, local_col_ids)``
    where the id lists map component positions back to core positions.
    """
    rpos: list[int] = []
    m = comp
    while m:
        low = m & -m
        m ^= low
        rpos.append(low.bit_length() - 1)
    local_of = {r: i for i, r in enumerate(rpos)}
    masks: list[int] = []
    costs: list[int] = []
    payloads: list[int] = []
    cols: list[int] = []
    for i, cm in enumerate(core.masks):
        if cm & comp == 0:
            continue
        packed = 0
        mm = cm
        while mm:
            low = mm & -mm
            mm ^= low
            packed |= 1 << local_of[low.bit_length() - 1]
        masks.append(packed)
        costs.append(core.costs[i])
        payloads.append(core.col_ids[i])
        cols.append(i)
    return CoveringProblem(len(rpos), masks, costs, payloads), rpos, cols


def _finish(
    problem: CoveringProblem[T],
    selected: list[int],
    optimal: bool,
    stats: ReductionStats,
) -> CoveringSolution[T]:
    cost = sum(problem.costs[i] for i in selected)
    return CoveringSolution(
        selected,
        cost,
        optimal,
        [problem.payloads[i] for i in selected],
        stats=stats,
    )


def solve_greedy(
    problem: CoveringProblem[T], *, budget: Budget | None = None
) -> CoveringSolution[T]:
    """Greedy covering through the reduction layer.

    Light reduction (essential + empty columns) to a core, component
    decomposition, then the two-strategy greedy with local improvement
    per component.  ``optimal`` is True only when the reduction solved
    the instance outright (essential columns alone form a cover — they
    are members of *every* feasible cover, so their cost is a lower
    bound met with equality).
    """
    core = reduce_problem(problem, budget=budget, dominance=False)
    stats = core.stats
    if not core.row_ids:
        stats.components = 0
        return _finish(problem, list(core.forced), True, stats)
    selected = list(core.forced)
    if not core.forced and len(core.col_ids) == len(problem.column_masks):
        # Nothing reduced: solve in place so repeated solves on the same
        # problem object share its cached bit-matrix packing.
        comps = split_components(len(core.row_ids), core.masks)
        stats.components = len(comps)
        if len(comps) == 1:
            raw = _cov._solve_greedy_raw(problem, budget=budget)
            raw.stats = stats
            return raw
    else:
        comps = split_components(len(core.row_ids), core.masks)
        stats.components = len(comps)
    for comp in comps:
        sub, _, _ = _component_problem(core, comp)
        solution = _cov._solve_greedy_raw(sub, budget=budget)
        selected.extend(solution.payloads)  # payloads are original indices
    return _finish(problem, selected, False, stats)


def solve_exact(
    problem: CoveringProblem[T],
    node_limit: int = 200_000,
    *,
    budget: Budget | None = None,
    seed: list[int] | None = None,
) -> CoveringSolution[T]:
    """Exact covering: full reduction fixpoint, component split, then a
    branch-and-bound that re-runs the fixpoint at every node.

    ``optimal`` is True iff every component's search completed within
    the shared ``node_limit``; otherwise the best cover found (never
    worse than greedy, which seeds each component's incumbent) is
    returned with ``optimal=False``.

    ``seed`` is an optional warm-start cover — column indices into
    ``problem`` known to be feasible (e.g. the previous solution in
    incremental re-minimization, the upper-bound reuse of Riener et
    al.).  It never steers the search itself: reduction may eliminate
    seed columns, and injecting a bound without a witness into a
    component would let pruning discard the optimum unsoundly.  It only
    acts as a fallback incumbent — when the search runs out of nodes
    *and* the seed is strictly cheaper than the best cover found, the
    seed is returned (still ``optimal=False``).  A proved search result
    is therefore bit-identical with or without a seed.
    """
    core = reduce_problem(problem, budget=budget, dominance=True)
    stats = core.stats
    if not core.row_ids:
        stats.components = 0
        return _finish(problem, list(core.forced), True, stats)
    comps = split_components(len(core.row_ids), core.masks)
    stats.components = len(comps)
    selected = list(core.forced)
    proved = True
    nodes_left = node_limit
    for comp in comps:
        sub, _, _ = _component_problem(core, comp)
        incumbent = _cov._solve_greedy_raw(sub, budget=budget)
        chosen, comp_proved, used = _branch_and_bound(
            sub, incumbent.selected, nodes_left, budget
        )
        nodes_left = max(nodes_left - used, 0)
        proved = proved and comp_proved
        selected.extend(sub.payloads[i] for i in chosen)
    if seed is not None and not proved:
        masks = problem.column_masks
        covered = 0
        for i in seed:
            covered |= masks[i]
        if covered == problem.universe:
            costs = problem.costs
            if sum(costs[i] for i in seed) < sum(costs[i] for i in selected):
                selected = list(seed)
    return _finish(problem, selected, proved, stats)


def solve_auto(
    problem: CoveringProblem[T], *, budget: Budget | None = None
) -> CoveringSolution[T]:
    """Auto covering: reduce once, then pick exact or greedy *per
    component* of the cyclic core.

    A component small enough after reduction (``AUTO_EXACT_MAX_ROWS`` ×
    ``AUTO_EXACT_MAX_COLUMNS``) is solved by branch-and-bound; larger
    components fall back to greedy.  ``optimal`` is True only when
    every component was proved.
    """
    core = reduce_problem(problem, budget=budget, dominance=True)
    stats = core.stats
    if not core.row_ids:
        stats.components = 0
        return _finish(problem, list(core.forced), True, stats)
    comps = split_components(len(core.row_ids), core.masks)
    stats.components = len(comps)
    selected = list(core.forced)
    proved = True
    nodes_left = AUTO_NODE_LIMIT
    for comp in comps:
        sub, _, _ = _component_problem(core, comp)
        incumbent = _cov._solve_greedy_raw(sub, budget=budget)
        if (
            sub.num_rows <= AUTO_EXACT_MAX_ROWS
            and sub.num_columns <= AUTO_EXACT_MAX_COLUMNS
            and nodes_left > 0
        ):
            chosen, comp_proved, used = _branch_and_bound(
                sub, incumbent.selected, nodes_left, budget
            )
            nodes_left = max(nodes_left - used, 0)
            proved = proved and comp_proved
            selected.extend(sub.payloads[i] for i in chosen)
        else:
            proved = False
            selected.extend(incumbent.payloads)
    return _finish(problem, selected, proved, stats)


def _branch_and_bound(
    problem: CoveringProblem[int],
    incumbent: list[int],
    node_limit: int,
    budget: Budget | None,
) -> tuple[list[int], bool, int]:
    """Mincov branch-and-bound on one component.

    Returns ``(selected_local_columns, proved, nodes_used)``.  Each
    node re-runs the reduction fixpoint on its subproblem (essential
    columns always; row/column dominance while the active column count
    stays under ``NODE_DOMINANCE_MAX_COLUMNS``), computes the
    independent-row lower bound with per-row columns pre-sorted by cost
    (cheapest usable column found by early exit; blocked rows skipped
    before any scan), and branches on the hardest row.
    """
    masks = problem.column_masks
    costs = problem.costs
    nrows = problem.num_rows
    ncols = problem.num_columns
    universe = problem.universe

    row_cols = [0] * nrows
    for j, m in enumerate(masks):
        bit = 1 << j
        mm = m
        while mm:
            low = mm & -mm
            mm ^= low
            row_cols[low.bit_length() - 1] |= bit
    row_cols_sorted = [
        sorted(
            (j for j in range(ncols) if row_cols[r] >> j & 1),
            key=lambda j: (costs[j], -masks[j].bit_count(), j),
        )
        for r in range(nrows)
    ]

    best_cost = sum(costs[i] for i in incumbent)
    best_sel = list(incumbent)
    nodes = 0
    proved = True
    trail: list[int] = []

    def lower_bound(uncovered: int, active: int) -> int:
        bound = 0
        blocked = 0
        m = uncovered
        while m:
            low = m & -m
            m ^= low
            if low & blocked:
                continue
            r = low.bit_length() - 1
            cheapest = None
            for j in row_cols_sorted[r]:
                if active >> j & 1:
                    cheapest = costs[j]
                    break
            if cheapest is None:
                return 1 << 60  # infeasible branch
            bound += cheapest
            union = 0
            rc = row_cols[r] & active
            while rc:
                lw = rc & -rc
                rc ^= lw
                union |= masks[lw.bit_length() - 1]
            blocked |= union
        return bound

    def search(uncovered: int, active: int, cost: int) -> None:
        nonlocal nodes, proved, best_cost, best_sel
        nodes += 1
        if budget is not None:
            budget.tick()
        if nodes > node_limit:
            proved = False
            return
        pushed = 0
        try:
            # -- per-node reduction fixpoint -----------------------------
            run_dominance = active.bit_count() <= NODE_DOMINANCE_MAX_COLUMNS
            while True:
                changed = False
                m = uncovered
                while m:
                    low = m & -m
                    m ^= low
                    if not (uncovered & low):
                        continue
                    rc = row_cols[low.bit_length() - 1] & active
                    if rc == 0:
                        return  # some row lost all columns: dead branch
                    if rc & (rc - 1) == 0:
                        j = rc.bit_length() - 1
                        trail.append(j)
                        pushed += 1
                        cost += costs[j]
                        active &= ~rc
                        uncovered &= ~masks[j]
                        changed = True
                if cost >= best_cost:
                    return
                if uncovered == 0:
                    best_cost = cost
                    best_sel = list(trail)
                    return
                if run_dominance:
                    # Row dominance on the uncovered rows.
                    rows = []
                    m = uncovered
                    while m:
                        low = m & -m
                        m ^= low
                        r = low.bit_length() - 1
                        rows.append((low, row_cols[r] & active))
                    rows.sort(key=lambda t: t[1].bit_count())
                    kept: list[int] = []
                    for bit, rc in rows:
                        if any(krc & ~rc == 0 for krc in kept):
                            uncovered &= ~bit
                            changed = True
                        else:
                            kept.append(rc)
                    # Column dominance restricted to the uncovered rows.
                    order = []
                    m = active
                    while m:
                        low = m & -m
                        m ^= low
                        order.append(low.bit_length() - 1)
                    amask = {j: masks[j] & uncovered for j in order}
                    for j in order:
                        mj = amask[j]
                        if mj == 0:
                            active &= ~(1 << j)
                            changed = True
                            continue
                        dom = active
                        mm = mj
                        while mm:
                            low = mm & -mm
                            mm ^= low
                            dom &= row_cols[low.bit_length() - 1]
                            if dom & (dom - 1) == 0:
                                break
                        dom &= ~(1 << j)
                        cj = costs[j]
                        pj = mj.bit_count()
                        dd = dom
                        while dd:
                            low = dd & -dd
                            dd ^= low
                            k = low.bit_length() - 1
                            pk = amask[k].bit_count()
                            if costs[k] < cj or (
                                costs[k] == cj
                                and (pk > pj or (pk == pj and k < j))
                            ):
                                active &= ~(1 << j)
                                changed = True
                                break
                if not changed:
                    break
            if cost + lower_bound(uncovered, active) >= best_cost:
                return
            # -- branch on the hardest row -------------------------------
            branch_rc = 0
            branch_n = 1 << 60
            m = uncovered
            while m:
                low = m & -m
                m ^= low
                rc = row_cols[low.bit_length() - 1] & active
                n = rc.bit_count()
                if n < branch_n:
                    branch_rc = rc
                    branch_n = n
                    if n == 2:
                        break
            options = []
            m = branch_rc
            while m:
                low = m & -m
                m ^= low
                options.append(low.bit_length() - 1)
            options.sort(
                key=lambda j: (costs[j], -(masks[j] & uncovered).bit_count(), j)
            )
            for j in options:
                trail.append(j)
                search(uncovered & ~masks[j], active & ~(1 << j), cost + costs[j])
                trail.pop()
                active &= ~(1 << j)  # tried: exclude from later branches
                if not proved:
                    return
        finally:
            for _ in range(pushed):
                trail.pop()

    search(universe, (1 << ncols) - 1 if ncols else 0, 0)
    return best_sel, proved, nodes
