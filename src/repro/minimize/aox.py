"""AND-OR-EXOR three-level minimization (a comparison baseline).

The paper's introduction cites AND-OR-EXOR networks (``f = g1 ⊕ g2``
with SP ``g_i``; Malik et al., Debnath & Sasao, Dubrova's AOXMIN) as
the other major three-level family, and its conclusion plans to
"compare SPP forms with other three level forms".  This module provides
a simple representative of that family so the comparison can be run:

**linear-correction EX-SOP** — choose an EXOR factor ``a`` (constant,
single variable, or a short XOR of variables), minimize the corrected
function ``f ⊕ a`` as a two-level SP form ``g``, and realize
``f = g ⊕ a``.  The network is AND→OR→EXOR with a single correction
term; the search tries every factor up to a width bound and keeps the
cheapest network.  This captures the classic wins (parity-polluted
control logic collapses once the parity is peeled off) without the
machinery of a full AOXMIN implementation, and is clearly documented as
a baseline, not a reproduction of those papers.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from functools import cached_property

from repro.boolfunc.function import BoolFunc
from repro.core.exor import ExorFactor
from repro.core.spp_form import SppForm
from repro.minimize.sp import minimize_sp

__all__ = ["AoxForm", "AoxResult", "minimize_aox"]


@dataclass(frozen=True)
class AoxForm:
    """``f = sop ⊕ correction`` — an AND-OR-EXOR network.

    Exposes the same read interface as :class:`SppForm` (``n``,
    ``evaluate``, ``on_set``) so :mod:`repro.verify` accepts it.
    """

    n: int
    sop: SppForm
    correction: ExorFactor

    def evaluate(self, point: int) -> int:
        return self.sop.evaluate(point) ^ self.correction.evaluate(point)

    def on_set(self) -> set[int]:
        return {p for p in range(1 << self.n) if self.evaluate(p)}

    @cached_property
    def num_literals(self) -> int:
        return self.sop.num_literals + self.correction.num_literals

    def to_string(self, var: str = "x") -> str:
        if self.correction.support == 0 and self.correction.parity == 0:
            return self.sop.to_string(var)
        return f"[{self.sop.to_string(var)}] (+) {self.correction.to_string(var)}"

    def __str__(self) -> str:
        return self.to_string()


@dataclass
class AoxResult:
    """Outcome of the AND-OR-EXOR search."""

    form: AoxForm
    tried: int
    seconds: float

    @property
    def num_literals(self) -> int:
        return self.form.num_literals


def _corrections(n: int, max_width: int):
    """Candidate correction factors: the constant 0 (plain SP), then
    every EXOR of up to ``max_width`` variables, plain and complemented."""
    yield ExorFactor(0, 0)
    for width in range(1, max_width + 1):
        for combo in itertools.combinations(range(n), width):
            support = 0
            for i in combo:
                support |= 1 << i
            yield ExorFactor(support, 0)
            yield ExorFactor(support, 1)


def minimize_aox(
    func: BoolFunc,
    *,
    max_width: int = 2,
    covering: str = "greedy",
) -> AoxResult:
    """Minimize ``func`` as ``SOP ⊕ (EXOR factor)``.

    ``max_width`` bounds the correction factor's literal count; width 2
    already covers the classical parity-of-a-pair corrections while
    keeping the search at ``O(n²)`` two-level minimizations.
    """
    t0 = time.perf_counter()
    best: AoxForm | None = None
    tried = 0
    for correction in _corrections(func.n, max_width):
        corrected_on = frozenset(
            p
            for p in range(1 << func.n)
            if (p in func.on_set) ^ correction.evaluate(p)
            and p not in func.dc_set
        )
        corrected = BoolFunc(func.n, corrected_on, func.dc_set)
        sp = minimize_sp(corrected, covering=covering)
        tried += 1
        candidate = AoxForm(func.n, sp.form, correction)
        if best is None or candidate.num_literals < best.num_literals:
            best = candidate
    assert best is not None
    return AoxResult(best, tried, time.perf_counter() - t0)
