"""Cost functions for covering (the paper minimizes literal counts)."""

from __future__ import annotations

from repro.core.pseudocube import Pseudocube

__all__ = ["literal_cost", "factor_cost", "product_cost"]


def literal_cost(pc: Pseudocube) -> int:
    """Number of literals of the CEX expression — the paper's default.

    The degree-n pseudoproduct (constant 1) has zero literals; covering
    costs must be positive, so it is priced at 1 (it can only appear for
    tautological functions, where it is trivially optimal anyway).
    """
    return max(pc.num_literals, 1)


def factor_cost(pc: Pseudocube) -> int:
    """Number of EXOR factors (AND fan-in) of the CEX expression."""
    return max(pc.n - pc.degree, 1)


def product_cost(pc: Pseudocube) -> int:
    """Unit cost per pseudoproduct (minimizes the number of products)."""
    return 1
