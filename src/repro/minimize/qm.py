"""Quine–McCluskey prime implicant generation (the SP baseline).

The paper's Tables 1 and 3 compare SPP forms against minimal SP forms,
and the heuristic of Section 3.4 is *seeded* with the SP prime
implicants ("the set of prime implicants of the SP minimization of F,
as this set is much faster to obtain than the set of prime
pseudoproducts").  This module provides both.

A cube is ``(values, mask)``: ``mask`` has a bit per *free* ('-')
position, ``values`` holds the fixed bits (zero on free positions).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.boolfunc.function import BoolFunc
from repro.core.bitvec import mask_of_width, popcount
from repro.core.pseudocube import Pseudocube

__all__ = ["Cube", "prime_implicants"]


@dataclass(frozen=True, slots=True)
class Cube:
    """A product term (cube) over ``B^n``."""

    values: int
    mask: int

    def __post_init__(self) -> None:
        if self.values & self.mask:
            raise ValueError("values must be zero on free positions")

    def covers(self, point: int) -> bool:
        return (point & ~self.mask) == self.values

    def points(self) -> Iterator[int]:
        """Enumerate the minterms of the cube."""
        free_bits = []
        m = self.mask
        while m:
            low = m & -m
            free_bits.append(low)
            m ^= low
        for combo in range(1 << len(free_bits)):
            p = self.values
            for j, b in enumerate(free_bits):
                if (combo >> j) & 1:
                    p |= b
            yield p

    def num_literals(self, n: int) -> int:
        return n - popcount(self.mask)

    def to_pseudocube(self, n: int) -> Pseudocube:
        """Cubes are pseudocubes whose non-canonical columns are constant."""
        return Pseudocube.from_cube(n, mask_of_width(n) & ~self.mask, self.values)

    def to_string(self, n: int) -> str:
        chars = []
        for i in range(n):
            if (self.mask >> i) & 1:
                chars.append("-")
            else:
                chars.append(str((self.values >> i) & 1))
        return "".join(chars)


def prime_implicants(func: BoolFunc) -> list[Cube]:
    """All prime implicants of ``func`` (don't-cares participate in
    expansion, as in standard Quine–McCluskey)."""
    care = func.care_set
    if not care:
        return []
    current: set[Cube] = {Cube(p, 0) for p in care}
    primes: list[Cube] = []
    while current:
        combined: set[Cube] = set()
        merged: set[Cube] = set()
        # Group by mask and by popcount of values: only cubes with the
        # same free positions and Hamming-adjacent values can merge.
        groups: dict[tuple[int, int], list[Cube]] = {}
        for cube in current:
            groups.setdefault((cube.mask, popcount(cube.values)), []).append(cube)
        for (mask, ones), cubes in groups.items():
            partners = groups.get((mask, ones + 1), [])
            for a in cubes:
                for b in partners:
                    diff = a.values ^ b.values
                    if popcount(diff) == 1:
                        combined.add(Cube(a.values & ~diff, mask | diff))
                        merged.add(a)
                        merged.add(b)
        primes.extend(cube for cube in current if cube not in merged)
        current = combined
    return primes
