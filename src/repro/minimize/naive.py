"""The baseline EPPP construction of Luccio & Pagli [5].

The original Quine–McCluskey-like procedure compares **all pairs** of
pseudoproducts generated at each step — ``|X^i|·(|X^i|-1)/2`` structure
comparisons — unifying the pairs whose structures match.  The paper's
Table 2 measures exactly this algorithm against the partition-trie
Algorithm 2; this module reimplements it so the comparison can be
reproduced.

It produces the *same* EPPP set as :func:`repro.minimize.eppp.generate_eppp`
(asserted by the test suite); only the work performed differs.
"""

from __future__ import annotations

import time

from repro.boolfunc.function import BoolFunc
from repro.core.pseudocube import Pseudocube
from repro.minimize.eppp import EpppResult, GenerationBudgetExceeded, StepStats

__all__ = ["generate_eppp_naive"]


def generate_eppp_naive(
    func: BoolFunc,
    *,
    discard_equal: bool = True,
    max_pseudoproducts: int | None = None,
    max_seconds: float | None = None,
) -> EpppResult:
    """All-pairs EPPP generation (the pre-partition-trie algorithm).

    ``max_seconds`` plays the role of the paper's two-day timeout: when
    exceeded, :class:`GenerationBudgetExceeded` is raised (Table 2 marks
    such runs with a star).
    """
    deadline = None if max_seconds is None else time.perf_counter() + max_seconds
    current: dict[Pseudocube, None] = {
        Pseudocube.from_point(func.n, p): None for p in sorted(func.care_set)
    }
    result = EpppResult(func.n, [])
    degree = 0
    total = len(current)
    while current:
        t0 = time.perf_counter()
        items = list(current)
        size = len(items)
        next_level: dict[Pseudocube, None] = {}
        covered: set[Pseudocube] = set()
        comparisons = 0
        duplicates = 0
        for i in range(size - 1):
            gi = items[i]
            for j in range(i + 1, size):
                gj = items[j]
                comparisons += 1
                union = gi.union(gj)  # None unless structures match
                if union is None:
                    continue
                if union in next_level:
                    duplicates += 1
                else:
                    next_level[union] = None
                child_literals = union.num_literals
                parent_literals = gi.num_literals
                if child_literals < parent_literals or (
                    discard_equal and child_literals == parent_literals
                ):
                    covered.add(gi)
                    covered.add(gj)
            if deadline is not None and time.perf_counter() > deadline:
                raise GenerationBudgetExceeded(
                    f"naive generation exceeded {max_seconds} seconds"
                )
        retained = [pc for pc in items if pc not in covered]
        result.eppps.extend(retained)
        result.steps.append(
            StepStats(
                degree=degree,
                pseudoproducts=size,
                groups=1,
                comparisons=comparisons,
                naive_comparisons=size * (size - 1) // 2,
                generated=len(next_level),
                duplicates=duplicates,
                retained=len(retained),
                seconds=time.perf_counter() - t0,
            )
        )
        total += len(next_level)
        if max_pseudoproducts is not None and total > max_pseudoproducts:
            raise GenerationBudgetExceeded(
                f"generated {total} pseudoproducts (limit {max_pseudoproducts})"
            )
        current = next_level
        degree += 1
    return result
