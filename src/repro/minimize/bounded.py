"""Bounded-factor SPP minimization (the "2-SPP" extension).

The paper's conclusion points toward algorithms "whose complexity no
longer depends on the number of pseudoproducts to manipulate"; the
follow-up literature restricts EXOR factors to at most two literals
(2-SPP forms), shrinking the candidate space drastically while keeping
most of the literal savings.  This module generalizes Algorithm 2 with
a *factor-width bound* ``B``:

* ``B = 1``  → plain cubes: the generation degenerates to
  Quine–McCluskey and the result is an SP form;
* ``B = 2``  → 2-SPP forms;
* ``B = n``  → unrestricted SPP (Algorithm 2 exactly).

A pseudocube is ``B``-bounded iff every factor of its CEX has at most
``B`` literals, i.e. every direction-basis vector has at most ``B-1``
bits besides its pivot *columnwise*: factor width of non-canonical
variable ``j`` is 1 + (number of basis vectors with bit ``j``).
Unions that break the bound are generated but not kept, so the search
explores exactly the bounded pseudoproduct lattice.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro.boolfunc.function import BoolFunc
from repro.budget import Budget
from repro.core.pseudocube import Pseudocube
from repro.minimize.cost import literal_cost
from repro.minimize.eppp import EpppResult, StepStats, make_store
from repro.minimize.exact import SppResult, cover_with

__all__ = ["max_factor_width", "generate_bounded", "minimize_spp_bounded"]


def max_factor_width(pc: Pseudocube) -> int:
    """Width of the widest EXOR factor of ``CEX(pc)`` (0 if none)."""
    if pc.degree == pc.n:
        return 0
    counts: dict[int, int] = {}
    canonical = pc.canonical_mask
    for vec in pc.basis:
        rest = vec & ~(vec & -vec)
        while rest:
            low = rest & -rest
            rest ^= low
            j = low.bit_length() - 1
            counts[j] = counts.get(j, 0) + 1
    widest = 1  # a factor always holds its non-canonical variable
    for j, c in counts.items():
        if not (canonical >> j) & 1:
            widest = max(widest, 1 + c)
    return widest


def generate_bounded(
    func: BoolFunc,
    bound: int,
    *,
    backend: str = "index",
    discard_equal: bool = True,
    budget: Budget | None = None,
) -> EpppResult:
    """EPPP-style generation restricted to ``bound``-bounded factors."""
    if bound < 1:
        raise ValueError("factor width bound must be >= 1")
    store = make_store(backend)
    for p in sorted(func.care_set):
        store.insert(Pseudocube.from_point(func.n, p))
    result = EpppResult(func.n, [])
    degree = 0
    while len(store):
        t0 = time.perf_counter()
        next_store = make_store(backend)
        covered: set[Pseudocube] = set()
        comparisons = 0
        rejected = 0
        size = len(store)
        groups = 0
        for group in store.groups(budget=budget):
            g = len(group)
            groups += 1
            if g < 2:
                continue
            parent_literals = group[0].num_literals
            for i in range(g - 1):
                if budget is not None:
                    budget.tick(g - 1 - i)
                gi = group[i]
                for j in range(i + 1, g):
                    gj = group[j]
                    union = gi.union(gj)
                    comparisons += 1
                    if max_factor_width(union) > bound:
                        rejected += 1
                        continue
                    next_store.insert(union)
                    child_literals = union.num_literals
                    if child_literals < parent_literals or (
                        discard_equal and child_literals == parent_literals
                    ):
                        covered.add(gi)
                        covered.add(gj)
        retained = [pc for pc in store.items() if pc not in covered]
        result.eppps.extend(retained)
        result.steps.append(
            StepStats(
                degree=degree,
                pseudoproducts=size,
                groups=groups,
                comparisons=comparisons,
                naive_comparisons=size * (size - 1) // 2,
                generated=len(next_store),
                duplicates=rejected,
                retained=len(retained),
                seconds=time.perf_counter() - t0,
            )
        )
        store = next_store
        degree += 1
    return result


def minimize_spp_bounded(
    func: BoolFunc,
    bound: int,
    *,
    backend: str = "index",
    covering: str = "greedy",
    cost: Callable[[Pseudocube], int] = literal_cost,
    budget: Budget | None = None,
) -> SppResult:
    """Minimize ``func`` over ``bound``-bounded pseudoproducts."""
    if not func.on_set:
        form, optimal, seconds, stats = cover_with(func, [], covering=covering)
        return SppResult(form, 0, None, optimal, 0.0, seconds, covering_stats=stats)
    generation = generate_bounded(func, bound, backend=backend, budget=budget)
    form, optimal, seconds_covering, cover_stats = cover_with(
        func, generation.eppps, covering=covering, cost=cost, budget=budget
    )
    return SppResult(
        form=form,
        num_candidates=len(generation.eppps),
        generation=generation,
        covering_optimal=optimal,
        seconds_generation=generation.seconds,
        seconds_covering=seconds_covering,
        covering_stats=cover_stats,
    )
