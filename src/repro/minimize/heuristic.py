"""The incremental heuristic — Algorithm 3 of the paper.

Instead of growing every pseudoproduct from single points, the heuristic
starts from an arbitrary cover of the function — the SP prime implicants,
"much faster to obtain than the set of prime pseudoproducts" — and runs:

1. **Initialization** — one store per degree; each prime implicant is
   inserted into the store of its degree.
2. **Descendant phase** — ``k`` steps: every pseudoproduct of degree
   ``n-i`` spawns all its ``2^{m+1}-2`` sub-pseudocubes of degree
   ``n-i-1`` (Theorem 2), which join the next store down.  ``k``
   controls the computational effort; ``k = n-1`` descends all the way
   to single points, making the subsequent ascent exhaustive (the exact
   SPP solution).
3. **Ascendant phase** — from degree 0 upward, the union step of
   Algorithm 2 (same-structure groups unify; a pseudoproduct whose
   union has no more literals is discarded from the candidate list).
4. **Set covering** over all surviving pseudoproducts.

The result is the ``SPP_k`` form: an upper bound on the exact SPP form
that improves (and slows down exponentially) as ``k`` grows — figures 3
and 4 of the paper.

Stores are the same ``basis -> {anchor}`` buckets as the fast path of
:mod:`repro.minimize.eppp`, with the identical per-delta union caching.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.boolfunc.function import BoolFunc
from repro.budget import Budget
from repro.core import gf2
from repro.core.pseudocube import Pseudocube
from repro.core.subcubes import sub_pseudocubes
from repro.kernels import BasisInterner, coverage_masks
from repro.minimize.cost import literal_cost
from repro.minimize.eppp import _basis_literals
from repro.minimize.exact import SppResult, cover_with
from repro.minimize.qm import prime_implicants

__all__ = ["HeuristicStats", "minimize_spp_k"]

Buckets = dict[tuple[int, ...], dict[int, None]]


@dataclass
class HeuristicStats:
    """Phase-level instrumentation of one ``SPP_k`` run."""

    k: int
    num_primes: int
    descended: int
    ascended_comparisons: int
    candidates: int
    per_degree: dict[int, int] = field(default_factory=dict)


def _validate_cover(func: BoolFunc, cover: list[Pseudocube]) -> None:
    """The heuristic's input must be a cover of F: every pseudoproduct
    inside the care set, every on-point covered."""
    for pc in cover:
        if pc.n != func.n:
            raise ValueError("cover pseudoproduct over the wrong space")
    care_rows = sorted(func.care_set)
    care_masks = coverage_masks(care_rows, cover)
    for pc, mask in zip(cover, care_masks):
        if mask.bit_count() != len(pc):
            raise ValueError("cover pseudoproduct leaves the care set")
    on_rows = sorted(func.on_set)
    covered = 0
    for mask in coverage_masks(on_rows, cover):
        covered |= mask
    if covered != (1 << len(on_rows)) - 1:
        raise ValueError("initial cover does not cover the on-set")


def _insert(buckets: Buckets, basis: tuple[int, ...], anchor: int) -> bool:
    bucket = buckets.setdefault(basis, {})
    if anchor in bucket:
        return False
    bucket[anchor] = None
    return True


def _ascend_into(
    source: Buckets,
    target: Buckets,
    n: int,
    discard_equal: bool,
    comparison_budget: int | None,
    budget: Budget | None = None,
) -> tuple[int, list[Pseudocube], bool]:
    """One union step: unify all same-structure pairs of ``source`` into
    ``target`` (merging with its existing content) and return the
    comparisons performed, the retained pseudoproducts of ``source``
    (those not covered by a union of ≤ literals), and whether the
    comparison budget overflowed (in which case *all* of ``source`` is
    retained — a sound superset)."""
    comparisons = 0
    retained: list[Pseudocube] = []
    interner = BasisInterner()
    for basis, anchors in source.items():
        anchor_list = list(anchors)
        g = len(anchor_list)
        if g < 2:
            retained.extend(Pseudocube._unsafe(n, a, basis) for a in anchor_list)
            continue
        parent_literals = _basis_literals(n, basis)
        delta_cache: dict[int, tuple[tuple[int, ...], int, bool]] = {}
        covered: set[int] = set()
        for i in range(g - 1):
            if budget is not None:
                budget.tick(g - 1 - i)
            ai = anchor_list[i]
            for j in range(i + 1, g):
                delta = ai ^ anchor_list[j]
                info = delta_cache.get(delta)
                if info is None:
                    child_basis = interner.intern(gf2.insert_vector(basis, delta))
                    child_literals = _basis_literals(n, child_basis)
                    covers = child_literals < parent_literals or (
                        discard_equal and child_literals == parent_literals
                    )
                    info = (child_basis, delta & -delta, covers)
                    delta_cache[delta] = info
                child_basis, pivot_bit, covers = info
                anchor = ai ^ delta if ai & pivot_bit else ai
                comparisons += 1
                _insert(target, child_basis, anchor)
                if covers:
                    covered.add(ai)
                    covered.add(anchor_list[j])
            if comparison_budget is not None and comparisons > comparison_budget:
                everything = [
                    Pseudocube._unsafe(n, a, src_basis)
                    for src_basis, src_anchors in source.items()
                    for a in src_anchors
                ]
                return comparisons, everything, True
        retained.extend(
            Pseudocube._unsafe(n, a, basis)
            for a in anchor_list
            if a not in covered
        )
    return comparisons, retained, False


def minimize_spp_k(
    func: BoolFunc,
    k: int = 0,
    *,
    backend: str = "index",
    covering: str = "greedy",
    cost: Callable[[Pseudocube], int] = literal_cost,
    discard_equal: bool = True,
    max_comparisons: int | None = None,
    initial_cover: list[Pseudocube] | None = None,
    budget: Budget | None = None,
) -> SppResult:
    """Synthesize the ``SPP_k`` form of ``func`` (Algorithm 3).

    ``k = 0`` skips the descendant phase entirely: the ascent alone
    already finds unions like ``x1·x2·x̄4 + x̄1·x2·x4 = x2·(x1 ⊕ x4)``
    and gives "a significant upper bound of the SPP form" at a fraction
    of the exact cost (Table 3).  ``k = n-1`` reproduces the exact
    algorithm's search space.

    The paper states "the input is an arbitrary cover of the given
    function F" and uses the SP prime implicants because they are fast
    to obtain; that is the default here too, but any cover can be
    supplied via ``initial_cover`` (each pseudoproduct must lie in the
    care set, and together they must cover the on-set) — e.g. the rows
    of a PLA as parsed, skipping Quine–McCluskey entirely.

    ``backend`` is accepted for API symmetry with
    :func:`~repro.minimize.exact.minimize_spp`; the heuristic always
    uses the bucket index internally (the partition-trie backend is
    exercised through the exact engine).
    """
    n = func.n
    if not 0 <= k < n:
        raise ValueError("k must be in [0, n-1]")
    if backend not in ("index", "trie"):
        raise ValueError(f"unknown store backend {backend!r}")
    if not func.on_set:
        form, optimal, seconds, stats = cover_with(func, [], covering=covering)
        return SppResult(form, 0, None, optimal, 0.0, seconds, covering_stats=stats)

    t0 = time.perf_counter()
    # Phase 1: initialize per-degree stores with the initial cover
    # (default: the SP prime implicants).
    if initial_cover is None:
        primes = prime_implicants(func)
        cover = [cube.to_pseudocube(n) for cube in primes]
    else:
        cover = list(initial_cover)
        _validate_cover(func, cover)
    stores: list[Buckets] = [{} for _ in range(n + 1)]
    for pc in cover:
        _insert(stores[pc.degree], pc.basis, pc.anchor)

    # Phase 2: descendant phase — k steps, top degree downwards.  The
    # budget is checked per parent: one degree level can spawn
    # |store| × (2^{m+1}-2) children, so between-level checks are not
    # enough on wide functions.
    descended = 0
    exhausted = False
    for i in range(1, k + 1):
        degree = n - i
        if degree < 1 or exhausted:
            break
        target = stores[degree - 1]
        for basis, anchors in list(stores[degree].items()):
            if exhausted:
                break
            for anchor in list(anchors):
                parent = Pseudocube._unsafe(n, anchor, basis)
                for child in sub_pseudocubes(parent):
                    if _insert(target, child.basis, child.anchor):
                        descended += 1
                if budget is not None:
                    budget.tick()
                if max_comparisons is not None and descended > max_comparisons:
                    exhausted = True  # enough material; ascent stays sound
                    break

    # Phase 3: ascendant phase — Algorithm 2's union step per degree.
    # ``max_comparisons`` bounds the per-step union work on functions
    # whose pseudoproduct lattice explodes; on overflow the step keeps
    # its whole source (a sound superset) and the ascent continues with
    # whatever reached the next degree.
    comparisons = 0
    candidates: list[Pseudocube] = []
    for degree in range(n):
        source = stores[degree]
        if not source:
            continue
        step_comparisons, retained, _ = _ascend_into(
            source, stores[degree + 1], n, discard_equal, max_comparisons,
            budget=budget,
        )
        comparisons += step_comparisons
        candidates.extend(retained)
    candidates.extend(
        Pseudocube._unsafe(n, a, basis)
        for basis, anchors in stores[n].items()
        for a in anchors
    )
    seconds_generation = time.perf_counter() - t0

    form, optimal, seconds_covering, cover_stats = cover_with(
        func, candidates, covering=covering, cost=cost, budget=budget
    )
    result = SppResult(
        form=form,
        num_candidates=len(candidates),
        generation=None,
        covering_optimal=optimal,
        seconds_generation=seconds_generation,
        seconds_covering=seconds_covering,
        covering_stats=cover_stats,
    )
    result.heuristic = HeuristicStats(
        k=k,
        num_primes=len(cover),
        descended=descended,
        ascended_comparisons=comparisons,
        candidates=len(candidates),
        per_degree={
            d: sum(len(a) for a in stores[d].values())
            for d in range(n + 1)
            if stores[d]
        },
    )
    return result
