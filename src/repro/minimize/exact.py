"""Exact SPP minimization — Algorithm 2 end to end.

1. build the EPPP set with partition-trie grouping
   (:mod:`repro.minimize.eppp`);
2. solve the set covering problem over the on-set with literal-count
   costs (:mod:`repro.minimize.covering`).

"Exact" refers to the candidate generation: like the paper, the
covering step may be solved heuristically (the default), in which case
the literal count is an upper bound on the true minimum — Table 1's
caveat ("Since we used some heuristics in solving the set covering
problem, the number of literals and factors in the expressions are
upper bounds").  Pass ``covering="exact"`` for a provably minimal
selection on instances small enough for branch-and-bound.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, replace

from repro.boolfunc.function import BoolFunc
from repro.budget import Budget
from repro.core.pseudocube import Pseudocube
from repro.core.spp_form import SppForm
from repro.kernels import build_problem, coverage_masks
from repro.minimize import covering as cov
from repro.minimize.cost import literal_cost
from repro.minimize.eppp import EpppResult, GenerationBudgetExceeded, generate_eppp
from repro.minimize.qm import prime_implicants

__all__ = ["SppResult", "minimize_spp", "cover_with"]


@dataclass
class SppResult:
    """Outcome of an SPP minimization (exact or heuristic)."""

    form: SppForm
    num_candidates: int
    generation: EpppResult | None
    covering_optimal: bool
    seconds_generation: float
    seconds_covering: float
    # Populated by the SPP_k heuristic with its phase statistics.
    heuristic: object | None = None
    # Mincov reduction report for the covering step (rows/columns
    # eliminated, components, cyclic-core size), when one was produced.
    covering_stats: dict | None = None

    @property
    def num_literals(self) -> int:
        return self.form.num_literals

    @property
    def num_pseudoproducts(self) -> int:
        return self.form.num_pseudoproducts

    @property
    def seconds(self) -> float:
        return self.seconds_generation + self.seconds_covering


def cover_with(
    func: BoolFunc,
    candidates: list[Pseudocube],
    *,
    covering: str = "greedy",
    cost: Callable[[Pseudocube], int] = literal_cost,
    max_candidates: int = 400_000,
    budget: Budget | None = None,
) -> tuple[SppForm, bool, float, dict | None]:
    """Select a minimal-cost subset of ``candidates`` covering the on-set.

    Candidate lists beyond ``max_candidates`` (they arise from
    budget-truncated generations) are pruned before covering: the most
    efficient candidates (fewest literals per covered point) are kept,
    plus, for every on-point, the most efficient candidate covering it
    (so feasibility is preserved).  A pruned instance can no longer be
    solved exactly, so ``proved_optimal`` is forced off.

    Returns ``(form, proved_optimal, seconds, reduction_stats)`` where
    ``reduction_stats`` is the mincov reduction report as a dict (or
    None when the solver skipped the reduction layer).
    """
    t0 = time.perf_counter()
    pruned = False
    if len(candidates) > max_candidates:
        candidates = _prune_candidates(func, candidates, cost, max_candidates)
        pruned = True
    rows = sorted(func.on_set)
    if budget is not None:
        budget.check()
    problem = build_problem(rows, candidates, cost_of=cost, budget=budget)
    solution = cov.solve(problem, mode=covering, budget=budget)
    form = SppForm(func.n, tuple(solution.payloads))
    optimal = solution.optimal and not pruned
    stats = solution.stats.as_dict() if solution.stats is not None else None
    return form, optimal, time.perf_counter() - t0, stats


def _prune_candidates(
    func: BoolFunc,
    candidates: list[Pseudocube],
    cost: Callable[[Pseudocube], int],
    limit: int,
) -> list[Pseudocube]:
    """Keep the ``limit`` most efficient candidates plus one feasibility
    witness per on-point."""

    def efficiency(pc: Pseudocube) -> float:
        return cost(pc) / len(pc)

    ranked = sorted(candidates, key=efficiency)
    keep = ranked[:limit]
    rows = sorted(func.on_set)
    masks = coverage_masks(rows, ranked)
    covered = 0
    for mask in masks[:limit]:
        covered |= mask
    missing = ((1 << len(rows)) - 1) & ~covered
    if missing:
        for pos in range(limit, len(ranked)):
            hit = missing & masks[pos]
            if hit:
                keep.append(ranked[pos])
                missing &= ~hit
                if not missing:
                    break
    return keep


def minimize_spp(
    func: BoolFunc,
    *,
    backend: str = "index",
    covering: str = "greedy",
    cost: Callable[[Pseudocube], int] = literal_cost,
    max_pseudoproducts: int | None = None,
    on_limit: str = "raise",
    fallback: Callable[[BoolFunc], SppResult] | None = None,
    budget: Budget | None = None,
) -> SppResult:
    """Minimize ``func`` as an SPP form (Algorithm 2).

    Completely specified functions whose on-set is itself a pseudocube
    (affine functions, parities, tautologies) are recognized up front
    and returned as the single-pseudoproduct form: that form is
    minimum-literal (any cover by sub-pseudocubes costs at least as
    much — verified exhaustively for n ≤ 4 and by the halving argument
    in docs/THEORY.md), and skipping generation avoids enumerating the
    astronomically many sub-pseudocubes of a large coset.

    ``fallback`` is the degradation hook used by :mod:`repro.engine`:
    when generation blows the ``max_pseudoproducts`` budget under
    ``on_limit="raise"``, the fallback minimizer (e.g. bounded or
    ``SPP_0``) is invoked instead of propagating
    :class:`~repro.minimize.eppp.GenerationBudgetExceeded`, and its
    result is returned with ``covering_optimal`` forced off.

    ``budget`` is a cooperative :class:`~repro.budget.Budget` threaded
    into generation and covering; a blown deadline, memory ceiling or
    cancellation raises :class:`repro.errors.BudgetExceeded` /
    :class:`repro.errors.Cancelled` from the inner loops.
    """
    if not func.on_set:
        return SppResult(SppForm(func.n, ()), 0, None, True, 0.0, 0.0)
    if not func.dc_set:
        t0 = time.perf_counter()
        try:
            single = Pseudocube.from_points(func.n, func.on_set)
        except ValueError:
            single = None
        if single is not None:
            return SppResult(
                form=SppForm(func.n, (single,)),
                num_candidates=1,
                generation=None,
                covering_optimal=True,
                seconds_generation=time.perf_counter() - t0,
                seconds_covering=0.0,
            )
    try:
        generation = generate_eppp(
            func,
            backend=backend,
            max_pseudoproducts=max_pseudoproducts,
            on_limit=on_limit,
            budget=budget,
        )
    except GenerationBudgetExceeded:
        if fallback is None:
            raise
        return replace(fallback(func), covering_optimal=False)
    candidates = generation.eppps
    if generation.truncated:
        # A capped generation may have lost the mid-degree pseudoproducts
        # a good cover needs; the SP prime implicants are always valid
        # pseudoproducts and guarantee the result is no worse than a
        # two-level cover.
        candidates = candidates + [
            cube.to_pseudocube(func.n) for cube in prime_implicants(func)
        ]
    form, optimal, cover_seconds, cover_stats = cover_with(
        func, candidates, covering=covering, cost=cost, budget=budget
    )
    return SppResult(
        form=form,
        num_candidates=len(generation.eppps),
        generation=generation,
        covering_optimal=optimal,
        seconds_generation=generation.seconds,
        seconds_covering=cover_seconds,
        covering_stats=cover_stats,
    )
