"""Unate set covering — step 3 of Algorithm 2 (and of SP minimization).

Minimal SP/SPP covers are solutions of the set covering problem
``⟨X, Y, R⟩`` of the paper: ``X`` are the on-set points, ``Y`` the prime
implicants / EPPPs, and the cost of a column is its literal count.

Rows are represented as bit positions of Python ints, so a column is a
single int mask and "does this selection cover everything" is one OR
chain.  Two solvers are provided:

* :func:`solve_greedy` — the classical ratio-greedy with a
  reverse-delete redundancy pass.  The paper also used covering
  heuristics ("the numbers … are upper bounds for the minimal
  solution"), so this is the default and the faithful choice.
* :func:`solve_exact` — branch-and-bound with essential-column and
  row/column dominance reductions and an independent-row lower bound.
  Practical for the row/column sizes of the small benchmarks; a node
  budget makes it degrade gracefully into a heuristic (the result flags
  whether optimality was proved).

Both public solvers (and :func:`solve`) route through the
:mod:`repro.minimize.mincov` reduction layer — essential columns,
row/column dominance to fixpoint, connected-component decomposition —
and report what it did via :attr:`CoveringSolution.stats`.  The
pre-reduction primitives (``_solve_greedy_raw`` / ``_solve_exact_raw``)
stay here and are what mincov runs on each component; pass
``reduce=False`` to call them directly.

When NumPy is available the greedy selection loop additionally runs on
a packed :class:`repro.kernels.bitmat.BitMatrix` (one vectorized gain
computation per round instead of a Python heap), pinned bit-for-bit
equivalent to the CELF heap path.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generic, TypeVar

from repro.budget import Budget

if TYPE_CHECKING:  # pragma: no cover — import cycle broken at runtime
    from repro.minimize.mincov import ReductionStats

__all__ = [
    "CoveringProblem",
    "CoveringSolution",
    "build_covering",
    "problem_from_masks",
    "solve_greedy",
    "solve_exact",
    "solve",
]

T = TypeVar("T")


@dataclass
class CoveringProblem(Generic[T]):
    """Rows 0..num_rows-1; column ``i`` covers ``column_masks[i]``."""

    num_rows: int
    column_masks: list[int]
    costs: list[int]
    payloads: list[T]

    def __post_init__(self) -> None:
        if not (len(self.column_masks) == len(self.costs) == len(self.payloads)):
            raise ValueError("column arrays must have equal length")
        if any(c <= 0 for c in self.costs):
            raise ValueError("costs must be positive")

    @property
    def universe(self) -> int:
        return (1 << self.num_rows) - 1

    @property
    def num_columns(self) -> int:
        return len(self.column_masks)

    def is_feasible(self) -> bool:
        mask = 0
        for m in self.column_masks:
            mask |= m
        return mask == self.universe


@dataclass
class CoveringSolution(Generic[T]):
    """A cover: selected column indices, their payloads and total cost.

    ``stats`` carries the mincov reduction report (rows/columns
    eliminated, components, cyclic-core size) when the solution went
    through the reduction layer; it is ``None`` for the raw solvers.
    """

    selected: list[int]
    cost: int
    optimal: bool
    payloads: list[T] = field(default_factory=list)
    stats: ReductionStats | None = None


def build_covering(
    rows: Sequence[int],
    candidates: Iterable[T],
    covered_rows_of,
    cost_of,
) -> CoveringProblem[T]:
    """Build a problem from domain objects.

    ``rows`` are arbitrary hashable row identifiers (points);
    ``covered_rows_of(candidate)`` yields the row identifiers a
    candidate covers (identifiers outside ``rows`` are ignored — e.g.
    don't-care points of a pseudoproduct); ``cost_of(candidate)`` is its
    positive integer cost.  Candidates covering no rows are dropped.
    """
    index = {row: i for i, row in enumerate(rows)}
    masks: list[int] = []
    costs: list[int] = []
    payloads: list[T] = []
    for cand in candidates:
        mask = 0
        for row in covered_rows_of(cand):
            pos = index.get(row)
            if pos is not None:
                mask |= 1 << pos
        if mask:
            masks.append(mask)
            costs.append(cost_of(cand))
            payloads.append(cand)
    return CoveringProblem(len(rows), masks, costs, payloads)


def problem_from_masks(
    num_rows: int,
    masks: Sequence[int],
    costs: Sequence[int],
    payloads: Sequence[T],
) -> CoveringProblem[T]:
    """Build a problem from precomputed row masks (kernel output),
    dropping zero-coverage columns like :func:`build_covering` does."""
    if 0 not in masks:
        return CoveringProblem(num_rows, list(masks), list(costs), list(payloads))
    keep = [i for i, mask in enumerate(masks) if mask]
    return CoveringProblem(
        num_rows,
        [masks[i] for i in keep],
        [costs[i] for i in keep],
        [payloads[i] for i in keep],
    )


def solve_greedy(
    problem: CoveringProblem[T],
    *,
    budget: Budget | None = None,
    reduce: bool = True,
) -> CoveringSolution[T]:
    """Greedy covering with local improvement.

    With ``reduce=True`` (the default) the problem first goes through
    the mincov light reduction — essential columns to fixpoint, empty
    columns, connected components — and the greedy runs per component
    on the cyclic core (see :func:`repro.minimize.mincov.solve_greedy`);
    the result's ``stats`` records what the reduction did.

    The greedy itself runs under two selection criteria (best
    rows-per-cost ratio, most new rows), applies reverse-delete
    redundancy elimination, then a bounded 1-removal improvement pass
    (drop a selected column, re-cover greedily, keep if cheaper), and
    returns the best of everything — the "some heuristics" of the
    paper's covering step.

    ``budget`` is ticked per column scan, so a blown deadline or a
    cancellation surfaces from inside the selection loop.
    """
    if problem.num_rows == 0:
        return CoveringSolution([], 0, True, [])
    if not problem.is_feasible():
        raise ValueError("covering problem is infeasible")
    if reduce:
        from repro.minimize import mincov

        return mincov.solve_greedy(problem, budget=budget)
    return _solve_greedy_raw(problem, budget=budget)


def _solve_greedy_raw(
    problem: CoveringProblem[T], *, budget: Budget | None = None
) -> CoveringSolution[T]:
    """The two-strategy greedy + improvement pass, no reductions."""
    if problem.num_rows == 0:
        return CoveringSolution([], 0, True, [])
    costs = problem.costs

    best: list[int] | None = None
    best_cost = 0
    for strategy in ("ratio", "gain"):
        selected = _greedy_pass(problem, strategy, forbidden=-1, budget=budget)
        # The improvement pass re-runs greedy once per selected column;
        # bound the extra work on very large candidate sets.
        if problem.num_columns * max(len(selected), 1) <= 5_000_000:
            selected = _improve(problem, selected, strategy, budget=budget)
        cost = sum(costs[i] for i in selected)
        if best is None or cost < best_cost:
            best, best_cost = selected, cost
    assert best is not None
    return CoveringSolution(
        best, best_cost, False, [problem.payloads[i] for i in best]
    )


def _bitmat_of(problem: CoveringProblem[T]):
    """The problem's packed bit-matrix, or None when the vector path
    doesn't apply (no numpy, or too few columns to beat the heap).

    The matrix is cached on the problem object — packing is O(columns ×
    words) and every `_improve` round would otherwise repay it.
    """
    from repro.kernels import bitmat

    if not bitmat.HAVE_NUMPY:
        return None
    if problem.num_columns < bitmat.MIN_COLUMNS_FOR_VECTOR:
        return None
    cached = getattr(problem, "_bitmat", None)
    if cached is None:
        cached = bitmat.BitMatrix(
            problem.column_masks, problem.costs, problem.num_rows
        )
        problem._bitmat = cached
    return cached


def _greedy_pass(
    problem: CoveringProblem[T],
    strategy: str,
    forbidden: int,
    seed: list[int] | None = None,
    budget: Budget | None = None,
) -> list[int]:
    """One greedy cover; ``forbidden`` column is skipped, ``seed``
    columns are pre-selected.

    Two implementations, selected by :func:`_bitmat_of` and pinned
    bit-for-bit equivalent by ``tests/minimize/test_lazy_greedy.py``:

    * vectorized — gains for *all* columns in one packed-uint64
      ``bitwise_count`` per selection round (numpy, large column
      counts);
    * lazy (CELF-style) heap — columns live in a max-heap keyed by
      their last-computed selection key.  Because gains only shrink as
      the cover grows (submodularity), a stale key is an upper bound —
      so the popped column's key is recomputed and the column is
      selected outright if it still beats the next heap entry,
      otherwise pushed back with its fresh key.  Heap order is
      ``(negated key, column index)``, matching the eager scan's
      strictly-greater comparison that kept the lowest index among key
      ties.
    """
    masks = problem.column_masks
    costs = problem.costs
    universe = problem.universe
    selected = list(seed) if seed else []
    covered = 0
    for i in selected:
        covered |= masks[i]
    if covered != universe:
        if budget is not None:
            budget.tick(max(problem.num_columns, 1))
        bm = _bitmat_of(problem)
        if bm is not None:
            from repro.kernels.bitmat import select_greedy

            selected.extend(
                select_greedy(bm, strategy, forbidden, covered, budget=budget)
            )
        else:
            _heap_select(problem, strategy, forbidden, covered, selected, budget)
    _drop_redundant(selected, masks, costs, universe)
    return selected


def _heap_select(
    problem: CoveringProblem[T],
    strategy: str,
    forbidden: int,
    covered: int,
    selected: list[int],
    budget: Budget | None,
) -> None:
    """The CELF heap selection loop; appends to ``selected`` in place."""
    masks = problem.column_masks
    costs = problem.costs
    universe = problem.universe
    ratio = strategy == "ratio"
    heap: list[tuple[tuple[float, int], int]] = []
    for i in range(problem.num_columns):
        if i == forbidden:
            continue
        gain = (masks[i] & ~covered).bit_count()
        if gain == 0:
            continue
        if ratio:
            neg_key = (-(gain / costs[i]), -gain)
        else:
            neg_key = (-float(gain), costs[i])
        heap.append((neg_key, i))
    heapq.heapify(heap)
    while covered != universe:
        if budget is not None:
            budget.tick()
        if not heap:
            raise ValueError("covering problem is infeasible")
        stale_key, i = heapq.heappop(heap)
        gain = (masks[i] & ~covered).bit_count()
        if gain == 0:
            continue  # gains never recover; drop the column for good
        if ratio:
            neg_key = (-(gain / costs[i]), -gain)
        else:
            neg_key = (-float(gain), costs[i])
        if neg_key == stale_key or not heap or (neg_key, i) <= heap[0]:
            covered |= masks[i]
            selected.append(i)
        else:
            heapq.heappush(heap, (neg_key, i))


def _improve(
    problem: CoveringProblem[T],
    selected: list[int],
    strategy: str,
    budget: Budget | None = None,
) -> list[int]:
    """1-removal local search: drop each chosen column in turn and
    re-cover the hole greedily; keep strict improvements.  Two rounds
    bound the work while catching the common greedy missteps."""
    costs = problem.costs
    for _ in range(2):
        improved = False
        current_cost = sum(costs[i] for i in selected)
        for victim in sorted(selected, key=lambda i: -costs[i]):
            remaining = [i for i in selected if i != victim]
            try:
                candidate = _greedy_pass(
                    problem, strategy, forbidden=victim, seed=remaining,
                    budget=budget,
                )
            except ValueError:
                continue  # victim was the only cover for some row
            cost = sum(costs[i] for i in candidate)
            if cost < current_cost:
                selected = candidate
                current_cost = cost
                improved = True
        if not improved:
            break
    return selected


def _drop_redundant(
    selected: list[int], masks: list[int], costs: list[int], universe: int
) -> None:
    """Reverse-delete: drop columns whose rows are covered by the rest,
    trying the most expensive first.

    One pass with prefix/suffix OR accumulators: when victim ``i`` (in
    most-expensive-first order) is considered, the rest of the current
    selection is exactly (survivors so far) | (not-yet-considered), so
    ``kept_or | suffix[i + 1]`` replaces the O(k) rescan per victim —
    bit-for-bit the same drops as the quadratic version.
    """
    if not selected:
        return
    order = sorted(selected, key=lambda i: -costs[i])
    k = len(order)
    suffix = [0] * (k + 1)
    for i in range(k - 1, -1, -1):
        suffix[i] = suffix[i + 1] | masks[order[i]]
    kept_or = 0
    dropped: set[int] = set()
    for i, col in enumerate(order):
        if kept_or | suffix[i + 1] == universe:
            dropped.add(col)
        else:
            kept_or |= masks[col]
    if dropped:
        selected[:] = [i for i in selected if i not in dropped]


def solve_exact(
    problem: CoveringProblem[T],
    node_limit: int = 200_000,
    *,
    budget: Budget | None = None,
    reduce: bool = True,
    seed: list[int] | None = None,
) -> CoveringSolution[T]:
    """Exact covering through the mincov reduction layer.

    With ``reduce=True`` (the default) the matrix is first reduced to
    its cyclic core by iterating essential-column forcing, row
    dominance, and column dominance to fixpoint; the core is split into
    connected components, and each component is solved by a
    branch-and-bound that re-applies the same reduction fixpoint at
    every search node (see :func:`repro.minimize.mincov.solve_exact`).
    ``reduce=False`` runs the raw branch-and-bound on the unreduced
    matrix.

    ``optimal`` is True in the result iff the search completed within
    the node budget; otherwise the best cover found so far is returned
    (never worse than greedy, which seeds the incumbent).  ``budget``
    is ticked once per search node, so cancellation and deadlines cut
    the search short from inside the recursion.

    ``seed`` is a known-feasible warm-start cover (column indices); it
    is only consulted when the search fails to prove optimality, as a
    fallback incumbent — see :func:`repro.minimize.mincov.solve_exact`.
    """
    if problem.num_rows == 0:
        return CoveringSolution([], 0, True, [])
    if not problem.is_feasible():
        raise ValueError("covering problem is infeasible")
    if reduce:
        from repro.minimize import mincov

        return mincov.solve_exact(problem, node_limit, budget=budget, seed=seed)
    return _solve_exact_raw(problem, node_limit, budget=budget)


def _solve_exact_raw(
    problem: CoveringProblem[T],
    node_limit: int = 200_000,
    *,
    budget: Budget | None = None,
) -> CoveringSolution[T]:
    """Raw branch-and-bound on the full matrix, no reductions."""
    if problem.num_rows == 0:
        return CoveringSolution([], 0, True, [])
    masks = problem.column_masks
    costs = problem.costs
    universe = problem.universe

    incumbent = _solve_greedy_raw(problem, budget=budget)
    best_cost = incumbent.cost
    best_selection = list(incumbent.selected)

    # Per-row column lists for branching and bounding.
    row_columns: list[list[int]] = [[] for _ in range(problem.num_rows)]
    for i, mask in enumerate(masks):
        m = mask
        while m:
            low = m & -m
            row_columns[low.bit_length() - 1].append(i)
            m ^= low
    # Cost-sorted copies and static per-row coverage unions for the
    # bound: the cheapest usable column is the first non-banned entry
    # of the sorted list (early exit), and the static union is an
    # admissible over-approximation of the banned-aware union (blocking
    # more rows only weakens the bound, never overshoots it).
    row_columns_sorted = [
        sorted(cols, key=lambda i: costs[i]) for cols in row_columns
    ]
    row_union = [0] * problem.num_rows
    for r, cols in enumerate(row_columns):
        u = 0
        for i in cols:
            u |= masks[i]
        row_union[r] = u

    nodes = 0
    exhausted = True

    def lower_bound(uncovered: int, banned: frozenset[int]) -> int:
        """Independent-row bound: rows whose candidate columns are
        pairwise disjoint; each adds its cheapest column's cost."""
        bound = 0
        blocked = 0
        m = uncovered
        while m:
            low = m & -m
            m ^= low
            if low & blocked:
                continue  # interacts with an already-counted row
            row = low.bit_length() - 1
            cheapest = None
            for i in row_columns_sorted[row]:
                if i not in banned:
                    cheapest = costs[i]
                    break
            if cheapest is None:
                return 1 << 60  # infeasible branch
            bound += cheapest
            blocked |= row_union[row]
        return bound

    def search(uncovered: int, banned: frozenset[int], cost: int, chosen: list[int]) -> None:
        nonlocal nodes, best_cost, best_selection, exhausted
        nodes += 1
        if budget is not None:
            budget.tick()
        if nodes > node_limit:
            exhausted = False
            return
        if uncovered == 0:
            if cost < best_cost:
                best_cost = cost
                best_selection = list(chosen)
            return
        if cost + lower_bound(uncovered, banned) >= best_cost:
            return
        # Branch on the hardest uncovered row (fewest usable columns).
        best_row = -1
        best_options: list[int] | None = None
        m = uncovered
        while m:
            low = m & -m
            m ^= low
            row = low.bit_length() - 1
            options = [i for i in row_columns[row] if i not in banned]
            if not options:
                return  # infeasible
            if best_options is None or len(options) < len(best_options):
                best_row = row
                best_options = options
                if len(options) == 1:
                    break
        assert best_options is not None and best_row >= 0
        # Try cheaper/larger columns first for better pruning.
        best_options.sort(key=lambda i: (costs[i], -masks[i].bit_count()))
        tried: list[int] = []
        for i in best_options:
            chosen.append(i)
            search(
                uncovered & ~masks[i],
                banned | frozenset(tried),
                cost + costs[i],
                chosen,
            )
            chosen.pop()
            tried.append(i)
            if not exhausted:
                return

    search(universe, frozenset(), 0, [])
    return CoveringSolution(
        best_selection,
        best_cost,
        exhausted,
        [problem.payloads[i] for i in best_selection],
    )


def solve(
    problem: CoveringProblem[T],
    mode: str = "auto",
    *,
    budget: Budget | None = None,
    seed: list[int] | None = None,
) -> CoveringSolution[T]:
    """Dispatch: ``greedy``, ``exact``, or ``auto``.

    Auto reduces the matrix once, then picks exact or greedy *per
    component of the cyclic core* — the thresholds apply to reduced
    sizes, so instances whose core collapses get proved optimal even
    when the raw matrix looks large (mirroring the paper's practice of
    exact covers on the small benchmarks, heuristics on the rest).

    ``seed`` (exact mode only) is a known-feasible warm-start cover
    used as a fallback incumbent when the node budget runs out.
    """
    if mode == "greedy":
        return solve_greedy(problem, budget=budget)
    if mode == "exact":
        return solve_exact(problem, budget=budget, seed=seed)
    if mode == "auto":
        if problem.num_rows == 0:
            return CoveringSolution([], 0, True, [])
        if not problem.is_feasible():
            raise ValueError("covering problem is infeasible")
        from repro.minimize import mincov

        return mincov.solve_auto(problem, budget=budget)
    raise ValueError(f"unknown covering mode {mode!r}")
