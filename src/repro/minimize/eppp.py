"""EPPP set construction — steps 1 and 2 of Algorithm 2.

Starting from the degree-0 pseudoproducts (the single points of the
function), each step unifies all pairs of same-structure pseudoproducts
of degree ``k`` into pseudoproducts of degree ``k+1`` (Theorem 1
guarantees every such pair unifies, so no comparison is wasted), and
retains a degree-``k`` pseudoproduct unless some union covering it has
no more literals (Definition 3's *extended prime pseudoproducts*).

The same-structure grouping is delegated to a pluggable *store*:

* ``"index"`` — hash map keyed by the direction basis (the fast
  default).  This backend additionally exploits that within a group all
  pairs with the same anchor difference ``delta`` produce unions with
  the same direction space: basis insertion and literal counting are
  cached per ``delta``, and the new anchor is a single conditional XOR.
  When :mod:`repro.kernels.gf2mat` is available the whole step runs as
  packed matrix ops (see ``_generate_packed``); the scalar loop is the
  pinned bit-identical fallback (``REPRO_NO_NUMPY=1`` forces it).
* ``"trie"`` — :class:`repro.trie.PartitionTrie`, the paper's data
  structure node for node.

Both produce identical groups, hence identical EPPP sets; the ablation
benchmark measures their constant factors.

Instrumentation: each step records the number of pair unifications
performed (``Σ_j |X_j|·(|X_j|-1)/2`` over the groups) next to the
``|X|·(|X|-1)/2`` an ungrouped algorithm would pay — the exact
quantities discussed in Section 3.3 of the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.boolfunc.function import BoolFunc
from repro.budget import Budget
from repro.core import gf2
from repro.core.pseudocube import Pseudocube
from repro.kernels import gf2mat
from repro.kernels.intern import BasisInterner
from repro.trie.index import StructureIndex
from repro.trie.partition_trie import PartitionTrie

__all__ = [
    "StepStats",
    "EpppResult",
    "GenerationBudgetExceeded",
    "generate_eppp",
    "make_store",
]


class GenerationBudgetExceeded(RuntimeError):
    """The pseudoproduct budget was exhausted (``on_limit="raise"``)."""


def make_store(backend: str):
    """Instantiate a grouping store: ``"index"`` or ``"trie"``."""
    if backend == "index":
        return StructureIndex()
    if backend == "trie":
        return PartitionTrie()
    raise ValueError(f"unknown store backend {backend!r}")


@dataclass
class StepStats:
    """Counters for one generation step (one degree level)."""

    degree: int
    pseudoproducts: int
    groups: int
    comparisons: int
    naive_comparisons: int
    generated: int
    duplicates: int
    retained: int
    seconds: float


@dataclass
class EpppResult:
    """The EPPP candidate set plus per-step instrumentation."""

    n: int
    eppps: list[Pseudocube]
    steps: list[StepStats] = field(default_factory=list)
    truncated: bool = False

    @property
    def total_comparisons(self) -> int:
        return sum(s.comparisons for s in self.steps)

    @property
    def total_naive_comparisons(self) -> int:
        return sum(s.naive_comparisons for s in self.steps)

    @property
    def total_generated(self) -> int:
        return sum(s.pseudoproducts for s in self.steps)

    @property
    def seconds(self) -> float:
        return sum(s.seconds for s in self.steps)

    @property
    def max_degree(self) -> int:
        return max((s.degree for s in self.steps), default=0)


def generate_eppp(
    func: BoolFunc,
    *,
    backend: str = "index",
    discard_equal: bool = True,
    max_pseudoproducts: int | None = None,
    on_limit: str = "raise",
    budget: Budget | None = None,
) -> EpppResult:
    """Generate the EPPP candidate set of ``func``.

    Pseudoproducts are subsets of the *care* set (on ∪ dc), so
    don't-cares enlarge them exactly as in SP minimization; the covering
    step later only targets the on-set.

    ``max_pseudoproducts`` bounds the total number of distinct
    pseudoproducts generated across all degrees, enforced *within*
    steps (one degree level of an XOR-rich function can produce tens of
    millions of unions).  When exceeded, ``on_limit="raise"`` aborts
    with :class:`GenerationBudgetExceeded`; ``on_limit="stop"`` returns
    every pseudoproduct seen so far (still a sound cover superset —
    every discarded pseudoproduct's coverer was kept — but no longer
    guaranteed to contain a minimum-literal cover; the result is
    flagged ``truncated``).

    ``budget`` is a cooperative :class:`~repro.budget.Budget`, ticked
    per union row from inside the pairing loops: a blown deadline or a
    cancellation raises :class:`repro.errors.BudgetExceeded` /
    :class:`repro.errors.Cancelled` promptly even mid-step (the
    generation's explosive phase), on any thread.
    """
    if on_limit not in ("raise", "stop"):
        raise ValueError(f"unknown on_limit {on_limit!r}")
    if backend == "index":
        # Checked at call time (not import time) so REPRO_NO_NUMPY /
        # monkeypatched AVAILABLE select the pinned scalar fallback.
        if gf2mat.AVAILABLE and func.n <= gf2mat.MAX_PACKED_N:
            return _generate_packed(
                func, discard_equal, max_pseudoproducts, on_limit, budget
            )
        return _generate_fast(
            func, discard_equal, max_pseudoproducts, on_limit, budget
        )
    if backend == "trie":
        return _generate_generic(
            func, discard_equal, max_pseudoproducts, on_limit, budget
        )
    raise ValueError(f"unknown store backend {backend!r}")


# ----------------------------------------------------------------------
# Fast path: dict-of-dicts buckets, per-delta caching (index backend)
# ----------------------------------------------------------------------

def _basis_literals(n: int, basis: tuple[int, ...]) -> int:
    """Literal count of any pseudocube with this direction basis."""
    return sum(b.bit_count() - 1 for b in basis) + (n - len(basis))


def _generate_fast(
    func: BoolFunc,
    discard_equal: bool,
    max_pseudoproducts: int | None,
    on_limit: str,
    budget: Budget | None = None,
) -> EpppResult:
    n = func.n
    # bucket: basis -> {anchor: None}; degree-0 basis is ().
    buckets: dict[tuple[int, ...], dict[int, None]] = {
        (): {p: None for p in sorted(func.care_set)}
    }
    # Equal child bases arrive from independent insert_vector calls;
    # interning makes the next_buckets probes identity-hits and keeps
    # one tuple per distinct basis across the whole generation.
    interner = BasisInterner()
    result = EpppResult(n, [])
    return _fast_steps(
        n,
        buckets,
        result,
        0,
        len(buckets[()]),
        interner,
        discard_equal,
        max_pseudoproducts,
        on_limit,
        budget,
    )


def _fast_steps(
    n: int,
    buckets: dict[tuple[int, ...], dict[int, None]],
    result: EpppResult,
    degree: int,
    total: int,
    interner: BasisInterner,
    discard_equal: bool,
    max_pseudoproducts: int | None,
    on_limit: str,
    budget: Budget | None,
) -> EpppResult:
    """The scalar step loop, resumable from any (buckets, degree, total)
    state — both the plain fallback entry point and the hand-off target
    when a packed step would be too large to materialize as arrays."""
    budget_left = None if max_pseudoproducts is None else max_pseudoproducts - total
    # XOR-rich groups regenerate the same union 2^{k+1}-1 times; those
    # duplicates do not count toward the distinct-pseudoproduct budget,
    # so bound the raw union work as well (per step).
    comparison_cap = (
        0 if max_pseudoproducts is None else 8 * max_pseudoproducts
    )

    while buckets:
        t0 = time.perf_counter()
        next_buckets: dict[tuple[int, ...], dict[int, None]] = {}
        comparisons = 0
        duplicates = 0
        generated = 0
        size = sum(len(b) for b in buckets.values())
        retained: list[Pseudocube] = []
        overflow = False

        for basis, anchors in buckets.items():
            anchor_list = list(anchors)
            g = len(anchor_list)
            if g < 2:
                retained.extend(Pseudocube._unsafe(n, a, basis) for a in anchor_list)
                continue
            parent_literals = _basis_literals(n, basis)
            # delta -> (child basis, reduced delta, its pivot bit, covers parents?)
            delta_cache: dict[int, tuple[tuple[int, ...], int, int, bool]] = {}
            covered: set[int] = set()
            for i in range(g - 1):
                if budget is not None:
                    # One tick per union in this row keeps cancellation
                    # latency bounded even inside a single huge group.
                    budget.tick(g - 1 - i)
                ai = anchor_list[i]
                for j in range(i + 1, g):
                    aj = anchor_list[j]
                    delta = ai ^ aj
                    info = delta_cache.get(delta)
                    if info is None:
                        child_basis = interner.intern(
                            gf2.insert_vector(basis, delta)
                        )
                        # Anchors are zero on the parent pivots, hence so
                        # is delta: it is already reduced modulo `basis`.
                        reduced = delta
                        pivot_bit = reduced & -reduced
                        child_literals = _basis_literals(n, child_basis)
                        covers = child_literals < parent_literals or (
                            discard_equal and child_literals == parent_literals
                        )
                        info = (child_basis, reduced, pivot_bit, covers)
                        delta_cache[delta] = info
                    child_basis, reduced, pivot_bit, covers = info
                    # New anchor: parents share it; one conditional XOR.
                    anchor = ai ^ reduced if ai & pivot_bit else ai
                    comparisons += 1
                    target = next_buckets.get(child_basis)
                    if target is None:
                        next_buckets[child_basis] = {anchor: None}
                        generated += 1
                    elif anchor in target:
                        duplicates += 1
                    else:
                        target[anchor] = None
                        generated += 1
                    if covers:
                        covered.add(ai)
                        covered.add(aj)
                if budget_left is not None and (
                    generated > budget_left or comparisons > comparison_cap
                ):
                    overflow = True
                    break
            if overflow:
                break
            retained.extend(
                Pseudocube._unsafe(n, a, basis)
                for a in anchor_list
                if a not in covered
            )

        if overflow:
            if on_limit == "raise":
                raise GenerationBudgetExceeded(
                    f"generated more than {max_pseudoproducts} pseudoproducts"
                )
            # Keep everything seen at this degree and below: sound
            # superset (every discarded pseudoproduct's coverer kept).
            for basis, anchors in buckets.items():
                result.eppps.extend(
                    Pseudocube._unsafe(n, a, basis) for a in anchors
                )
            for basis, anchors in next_buckets.items():
                result.eppps.extend(
                    Pseudocube._unsafe(n, a, basis) for a in anchors
                )
            result.truncated = True
            result.steps.append(
                StepStats(
                    degree=degree,
                    pseudoproducts=size,
                    groups=len(buckets),
                    comparisons=comparisons,
                    naive_comparisons=size * (size - 1) // 2,
                    generated=generated,
                    duplicates=duplicates,
                    retained=size,
                    seconds=time.perf_counter() - t0,
                )
            )
            return result

        result.eppps.extend(retained)
        result.steps.append(
            StepStats(
                degree=degree,
                pseudoproducts=size,
                groups=len(buckets),
                comparisons=comparisons,
                naive_comparisons=size * (size - 1) // 2,
                generated=generated,
                duplicates=duplicates,
                retained=len(retained),
                seconds=time.perf_counter() - t0,
            )
        )
        total += generated
        if budget_left is not None:
            budget_left = max_pseudoproducts - total
        buckets = next_buckets
        degree += 1
    return result


# ----------------------------------------------------------------------
# Packed path: whole-step batched GF(2) matrix ops (kernels.gf2mat)
# ----------------------------------------------------------------------

# Above this many pairs in one step the packed path hands the remaining
# degrees to the scalar loop instead of materializing the pair arrays
# (~50 MB at the cap; also keeps every dedup key within 63 bits).
_MAX_PACKED_PAIRS = 1 << 23

# Below this many pairs the fixed cost of a packed step (~40 vector
# dispatches plus two sorts) loses to the scalar dict loop, so the tail
# degrees — and tiny functions outright — run scalar.  Tests monkeypatch
# this to 0 to force every step through the packed lanes.
_MIN_PACKED_PAIRS = 24


def _packed_to_buckets(anchors, sizes, rows, interner):
    """Packed step state → the scalar loop's bucket dicts, preserving
    bucket order and within-bucket anchor order exactly."""
    buckets: dict[tuple[int, ...], dict[int, None]] = {}
    anchor_list = anchors.tolist()
    row_list = rows.tolist()  # uniform full rank: no zero padding to strip
    intern = interner.intern
    start = 0
    for g, count in enumerate(sizes.tolist()):
        stop = start + count
        buckets[intern(tuple(row_list[g]))] = dict.fromkeys(anchor_list[start:stop])
        start = stop
    return buckets


def _generate_packed(
    func: BoolFunc,
    discard_equal: bool,
    max_pseudoproducts: int | None,
    on_limit: str,
    budget: Budget | None = None,
) -> EpppResult:
    """`_generate_fast` with every step computed as packed matrix ops.

    Per-step state is columnar: ``anchors`` (one uint64 per pseudocube,
    grouped by bucket in bucket order), ``sizes`` (bucket sizes), and
    ``rows`` — one ``(groups, degree)`` uint64 matrix holding every
    bucket's RREF basis (uniform rank: every degree-``k`` pseudocube has
    ``k`` direction rows).  One step is then:

    1. decode all pair indices of all groups at once (``pair_split``);
    2. batch-insert every pair's delta into its parent basis
       (``insert_reduced_batch``), then pack each child basis into one
       uint64 and dedup — one pass subsuming both the scalar path's
       per-group ``delta_cache`` and its cross-group basis unification;
    3. dedup ``(child basis, anchor)`` items by first occurrence in the
       pair stream — the packed form of ``next_buckets`` insertion;
    4. rebuild next-step state ordered by first appearance, which is
       exactly the scalar dict insertion order, so candidate order —
       and therefore covering tie-breaks, SPP forms and costs — is
       bit-identical to the fallback.

    Overflow replicates the scalar loop's row-granular check: the
    budget condition is evaluated at every row-end position of the pair
    stream and the stream truncated at the first hit, which this path
    proves equal to breaking out of the nested loops.  Budget ticks are
    batched (one ``tick(pairs)`` per step instead of one per row):
    cumulative accounting is identical and a packed step is far below
    any cancellation latency target.
    """
    np = gf2mat._np
    n = func.n
    points = sorted(func.care_set)
    interner = BasisInterner()
    result = EpppResult(n, [])
    degree = 0
    total = len(points)
    budget_left = None if max_pseudoproducts is None else max_pseudoproducts - total
    comparison_cap = 0 if max_pseudoproducts is None else 8 * max_pseudoproducts

    shift = np.uint64(n)
    mask = np.uint64((1 << n) - 1)
    anchors = np.array(points, dtype=np.uint64)
    sizes = np.array([len(points)], dtype=np.int64)
    rows = np.zeros((1, 0), dtype=np.uint64)
    # Literal count of each group's bases, carried across steps (a
    # step's child literals are the next step's parent literals).
    lits = np.full(1, n, dtype=np.int64)

    # Every iteration either returns (no pairs / overflow / hand-off) or
    # installs a non-empty next state of strictly higher degree <= n,
    # mirroring the scalar `while buckets` loop (which always enters:
    # the degree-0 state is one group even for an empty care set).
    while True:
        t0 = time.perf_counter()
        m = int(anchors.size)
        num_groups = int(sizes.size)
        naive = m * (m - 1) // 2

        pair_total = int((sizes * (sizes - 1) // 2).sum())
        # An overflowing step can never proceed past the first row-end
        # at or beyond the comparison cap, and row length is < m.
        stream_limit = (
            pair_total
            if budget_left is None
            else min(pair_total, comparison_cap + m + 1)
        )
        if (
            stream_limit > _MAX_PACKED_PAIRS
            or pair_total < _MIN_PACKED_PAIRS
            or pair_total == 0
            or m.bit_length() + n > 62
        ):
            return _fast_steps(
                n,
                _packed_to_buckets(anchors, sizes, rows, interner),
                result,
                degree,
                total,
                interner,
                discard_equal,
                max_pseudoproducts,
                on_limit,
                budget,
            )

        gidx, pi, pj = gf2mat.pair_split(
            sizes, None if budget_left is None else stream_limit
        )
        stream = int(gidx.size)
        if budget is not None:
            # One bulk tick per step, unless a tick cap would trip
            # inside it — then chunk at the scalar loop's granularity
            # (one row, <= 2^n ticks) so the overshoot stays bounded
            # the same way it is for the pairwise loop.
            if budget.max_ticks is None or (
                budget.ticks + stream <= budget.max_ticks
            ):
                budget.tick(stream)
            else:
                chunk = 1 << n
                for start in range(0, stream, chunk):
                    budget.tick(min(chunk, stream - start))

        if num_groups == 1:
            left, right = pi, pj
        else:
            starts = sizes.cumsum() - sizes
            left = starts[gidx] + pi
            right = starts[gidx] + pj
        ai = anchors[left]
        aj = anchors[right]
        # Anchors are zero on the parent pivots, hence so is the delta:
        # it is already reduced modulo the parent basis.
        delta = ai ^ aj

        if degree == 0:
            # Degree-0 lane: a pair's child basis IS its delta (one RREF
            # row), so basis identity needs no batched insert and no row
            # dedup — the delta doubles as the child key.  Literals:
            # child popcount-1 + (n-1) vs parent n, so a union covers
            # its parents iff popcount <= 2 (== 1 under strict fewer).
            weight = np.bitwise_count(delta)
            covers_pair = (weight <= 2) if discard_equal else (weight == 1)
            child_key = delta
            uniq_rows = None
            key2_max = 1 << (2 * n)
        else:
            # Child bases for the whole pair stream in one batched
            # insert (anchors are zero on parent pivots, so each delta
            # is already reduced), then child-basis identity by packing
            # every child basis into one uint64 — its sort order IS the
            # lexicographic row order, so a 1-D dedup replaces both the
            # scalar path's per-group delta_cache and the cross-group
            # basis unification in one pass.
            child_rows_s = gf2mat.insert_reduced_batch(rows[gidx], delta)
            rplus = child_rows_s.shape[1]
            if rplus * n <= 64:
                acc = child_rows_s[:, 0].copy()
                for c in range(1, rplus):
                    acc <<= shift
                    acc |= child_rows_s[:, c]
                maxacc = 1 << (rplus * n)
                if maxacc <= gf2mat._DENSE_MAXVAL and maxacc <= max(
                    4096, stream << 5
                ):
                    # Narrow packed bases: dedup by dense scatter table,
                    # no sort (rank order == sorted acc order, matching
                    # the sort branch bit for bit).
                    rep, child_of_s = gf2mat.dense_first_inverse(acc, maxacc)
                else:
                    order_s = gf2mat._argsort_keys(acc, maxacc)[0]
                    sa = acc[order_s]
                    rs = np.empty(sa.size, dtype=bool)
                    rs[0] = True
                    np.not_equal(sa[1:], sa[:-1], out=rs[1:])
                    rep = order_s[rs.nonzero()[0]]
                    child_of_s = np.empty(sa.size, dtype=np.int64)
                    child_of_s[order_s] = rs.cumsum() - 1
                uniq_rows = child_rows_s[rep]
            else:
                uniq_rows, rep, child_of_s = np.unique(
                    child_rows_s, axis=0, return_index=True, return_inverse=True
                )
                child_of_s = child_of_s.reshape(-1)
            lits_of_child = gf2mat.basis_literals(uniq_rows, n)
            child_lits = lits_of_child[child_of_s]
            if discard_equal:
                covers_pair = child_lits <= lits[gidx]
            else:
                covers_pair = child_lits < lits[gidx]
            child_key = child_of_s.astype(np.uint64)
            key2_max = uniq_rows.shape[0] << n

        pivot = delta & (np.uint64(0) - delta)
        # New anchor: ai ^ delta when ai holds the delta's pivot — which
        # is aj; one conditional select instead of an XOR.
        anchor = np.where((ai & pivot) != 0, aj, ai)
        key2 = (child_key << shift) | anchor
        uk2, first2 = gf2mat.unique_sorted_first(key2, key2_max)
        generated = int(first2.size)

        def build_next(uk2_sel, first2_sel):
            # Items of uk2_sel are key2-sorted, so equal child keys form
            # contiguous runs; a run is one next-step bucket.  Scalar dict
            # insertion orders are reproduced exactly: buckets by first
            # appearance of any of their items in the pair stream, items
            # within a bucket by their own first appearance.
            child_sorted = uk2_sel >> shift
            nitems = int(uk2_sel.size)
            run_start = np.empty(nitems, dtype=bool)
            run_start[0] = True
            np.not_equal(child_sorted[1:], child_sorted[:-1], out=run_start[1:])
            run_idx = run_start.nonzero()[0]
            bucket_first = np.minimum.reduceat(first2_sel, run_idx)
            # bucket_first values are distinct (a bucket's earliest item
            # position belongs to it alone), so no stable sort needed.
            appearance = bucket_first.argsort()
            item_first = bucket_first[run_start.cumsum() - 1]
            # Sort items by (bucket first appearance, own first
            # occurrence): both are distinct stream positions < stream,
            # so the pair order fuses into one integer key — much
            # cheaper than np.lexsort's two stable passes.
            order = (item_first * stream + first2_sel).argsort()
            bucket_child = child_sorted[run_idx][appearance]
            if uniq_rows is None:
                new_rows = bucket_child[:, None].copy()
            else:
                new_rows = uniq_rows[bucket_child.astype(np.int64)]
            # Run sizes without np.diff (its wrapper dominates here).
            run_sizes = np.empty(run_idx.size, dtype=np.int64)
            np.subtract(run_idx[1:], run_idx[:-1], out=run_sizes[:-1])
            run_sizes[-1] = nitems - int(run_idx[-1])
            return (
                (uk2_sel & mask)[order],
                run_sizes[appearance],
                new_rows,
                bucket_child,
            )

        if budget_left is not None and (
            stream > comparison_cap or generated > budget_left
        ):
            # Overflow.  The scalar loop checks after each row; row-end
            # pairs are exactly those with j == group_size - 1 and both
            # conditions are monotone in the stream position, so the
            # first qualifying row-end is where it broke out — and one
            # always exists here (the stream either ends on a row-end
            # or was pre-truncated past the comparison cap).
            is_first = np.zeros(stream, dtype=bool)
            is_first[first2] = True
            trigger = (pj == sizes[gidx] - 1) & (
                (np.cumsum(is_first) > budget_left)
                | (np.arange(1, stream + 1) > comparison_cap)
            )
            processed = int(np.flatnonzero(trigger)[0]) + 1
            if on_limit == "raise":
                raise GenerationBudgetExceeded(
                    f"generated more than {max_pseudoproducts} pseudoproducts"
                )
            # A key first occurring before the truncation point is still
            # a first occurrence after it, so the truncated next state
            # is a subset selection of the full-stream dedup.
            kept = first2 < processed
            generated = int(np.count_nonzero(kept))
            next_anchors, next_sizes, next_rows, _ = build_next(
                uk2[kept], first2[kept]
            )
            # Keep everything seen at this degree and below: sound
            # superset (every discarded pseudoproduct's coverer kept).
            result.eppps.extend(
                _materialize_packed(
                    n,
                    anchors,
                    np.repeat(np.arange(num_groups), sizes),
                    rows,
                    interner,
                )
            )
            result.eppps.extend(
                _materialize_packed(
                    n,
                    next_anchors,
                    np.repeat(np.arange(int(next_sizes.size)), next_sizes),
                    next_rows,
                    interner,
                )
            )
            result.truncated = True
            result.steps.append(
                StepStats(
                    degree=degree,
                    pseudoproducts=m,
                    groups=num_groups,
                    comparisons=processed,
                    naive_comparisons=naive,
                    generated=generated,
                    duplicates=processed - generated,
                    retained=m,
                    seconds=time.perf_counter() - t0,
                )
            )
            return result

        duplicates = stream - generated
        next_anchors, next_sizes, next_rows, bucket_child = build_next(uk2, first2)
        if degree == 0:
            # Child basis is a single delta row: popcount - 1 + (n - 1).
            next_lits = np.bitwise_count(bucket_child).astype(np.int64) + (n - 2)
        else:
            next_lits = lits_of_child[bucket_child.astype(np.int64)]

        # Definition 3 retention: an item survives unless some union
        # covering it had no more literals.
        covered = np.zeros(m, dtype=bool)
        covered[left[covers_pair]] = True
        covered[right[covers_pair]] = True
        keep = (~covered).nonzero()[0]
        if keep.size:
            item_group = np.arange(num_groups).repeat(sizes)
            retained = _materialize_packed(
                n, anchors[keep], item_group[keep], rows, interner
            )
        else:
            retained = []

        result.eppps.extend(retained)
        result.steps.append(
            StepStats(
                degree=degree,
                pseudoproducts=m,
                groups=num_groups,
                comparisons=stream,
                naive_comparisons=naive,
                generated=generated,
                duplicates=duplicates,
                retained=len(retained),
                seconds=time.perf_counter() - t0,
            )
        )
        total += generated
        if budget_left is not None:
            budget_left = max_pseudoproducts - total
        anchors, sizes, rows, lits = next_anchors, next_sizes, next_rows, next_lits
        degree += 1


def _materialize_packed(n, anchors, groups, rows, interner):
    """Pseudocubes for (anchor, group) pairs in array order, unpacking
    each needed basis row once (interned for downstream identity hits)."""
    bases: dict[int, tuple[int, ...]] = {}
    out = []
    row_list = None
    intern = interner.intern
    unsafe = Pseudocube._unsafe
    for a, g in zip(anchors.tolist(), groups.tolist()):
        basis = bases.get(g)
        if basis is None:
            if row_list is None:
                row_list = rows.tolist()
            basis = intern(tuple(row_list[g]))
            bases[g] = basis
        out.append(unsafe(n, a, basis))
    return out


# ----------------------------------------------------------------------
# Generic path: any store exposing insert/groups/items (trie backend)
# ----------------------------------------------------------------------

def _generate_generic(
    func: BoolFunc,
    discard_equal: bool,
    max_pseudoproducts: int | None,
    on_limit: str,
    budget: Budget | None = None,
) -> EpppResult:
    store = make_store("trie")
    for p in sorted(func.care_set):
        store.insert(Pseudocube.from_point(func.n, p))

    result = EpppResult(func.n, [])
    degree = 0
    total = len(store)
    budget_left = None if max_pseudoproducts is None else max_pseudoproducts - total
    comparison_cap = 0 if max_pseudoproducts is None else 8 * max_pseudoproducts
    while len(store):
        t0 = time.perf_counter()
        next_store = make_store("trie")
        covered: set[Pseudocube] = set()
        comparisons = 0
        duplicates = 0
        groups = 0
        size = len(store)
        overflow = False
        for group in store.groups(budget=budget):
            g = len(group)
            groups += 1
            if g < 2:
                continue
            parent_literals = group[0].num_literals
            for i in range(g - 1):
                if budget is not None:
                    budget.tick(g - 1 - i)
                gi = group[i]
                for j in range(i + 1, g):
                    gj = group[j]
                    union = gi.union(gj)
                    comparisons += 1
                    if not next_store.insert(union):
                        duplicates += 1
                    child_literals = union.num_literals
                    if child_literals < parent_literals or (
                        discard_equal and child_literals == parent_literals
                    ):
                        covered.add(gi)
                        covered.add(gj)
                if budget_left is not None and (
                    len(next_store) > budget_left or comparisons > comparison_cap
                ):
                    overflow = True
                    break
            if overflow:
                break
        if overflow:
            if on_limit == "raise":
                raise GenerationBudgetExceeded(
                    f"generated more than {max_pseudoproducts} pseudoproducts"
                )
            result.eppps.extend(store.items())
            result.eppps.extend(next_store.items())
            result.truncated = True
            result.steps.append(
                StepStats(
                    degree=degree,
                    pseudoproducts=size,
                    groups=groups,
                    comparisons=comparisons,
                    naive_comparisons=size * (size - 1) // 2,
                    generated=len(next_store),
                    duplicates=duplicates,
                    retained=size,
                    seconds=time.perf_counter() - t0,
                )
            )
            return result
        retained = [pc for pc in store.items() if pc not in covered]
        result.eppps.extend(retained)
        result.steps.append(
            StepStats(
                degree=degree,
                pseudoproducts=size,
                groups=groups,
                comparisons=comparisons,
                naive_comparisons=size * (size - 1) // 2,
                generated=len(next_store),
                duplicates=duplicates,
                retained=len(retained),
                seconds=time.perf_counter() - t0,
            )
        )
        total += len(next_store)
        if budget_left is not None:
            budget_left = max_pseudoproducts - total
            if budget_left < 0:
                if on_limit == "raise":
                    raise GenerationBudgetExceeded(
                        f"generated {total} pseudoproducts "
                        f"(limit {max_pseudoproducts})"
                    )
                result.eppps.extend(next_store.items())
                result.truncated = True
                return result
        store = next_store
        degree += 1
    return result
