"""EPPP set construction — steps 1 and 2 of Algorithm 2.

Starting from the degree-0 pseudoproducts (the single points of the
function), each step unifies all pairs of same-structure pseudoproducts
of degree ``k`` into pseudoproducts of degree ``k+1`` (Theorem 1
guarantees every such pair unifies, so no comparison is wasted), and
retains a degree-``k`` pseudoproduct unless some union covering it has
no more literals (Definition 3's *extended prime pseudoproducts*).

The same-structure grouping is delegated to a pluggable *store*:

* ``"index"`` — hash map keyed by the direction basis (the fast
  default).  This backend additionally exploits that within a group all
  pairs with the same anchor difference ``delta`` produce unions with
  the same direction space: basis insertion and literal counting are
  cached per ``delta``, and the new anchor is a single conditional XOR.
* ``"trie"`` — :class:`repro.trie.PartitionTrie`, the paper's data
  structure node for node.

Both produce identical groups, hence identical EPPP sets; the ablation
benchmark measures their constant factors.

Instrumentation: each step records the number of pair unifications
performed (``Σ_j |X_j|·(|X_j|-1)/2`` over the groups) next to the
``|X|·(|X|-1)/2`` an ungrouped algorithm would pay — the exact
quantities discussed in Section 3.3 of the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.boolfunc.function import BoolFunc
from repro.budget import Budget
from repro.core import gf2
from repro.core.pseudocube import Pseudocube
from repro.kernels.intern import BasisInterner
from repro.trie.index import StructureIndex
from repro.trie.partition_trie import PartitionTrie

__all__ = [
    "StepStats",
    "EpppResult",
    "GenerationBudgetExceeded",
    "generate_eppp",
    "make_store",
]


class GenerationBudgetExceeded(RuntimeError):
    """The pseudoproduct budget was exhausted (``on_limit="raise"``)."""


def make_store(backend: str):
    """Instantiate a grouping store: ``"index"`` or ``"trie"``."""
    if backend == "index":
        return StructureIndex()
    if backend == "trie":
        return PartitionTrie()
    raise ValueError(f"unknown store backend {backend!r}")


@dataclass
class StepStats:
    """Counters for one generation step (one degree level)."""

    degree: int
    pseudoproducts: int
    groups: int
    comparisons: int
    naive_comparisons: int
    generated: int
    duplicates: int
    retained: int
    seconds: float


@dataclass
class EpppResult:
    """The EPPP candidate set plus per-step instrumentation."""

    n: int
    eppps: list[Pseudocube]
    steps: list[StepStats] = field(default_factory=list)
    truncated: bool = False

    @property
    def total_comparisons(self) -> int:
        return sum(s.comparisons for s in self.steps)

    @property
    def total_naive_comparisons(self) -> int:
        return sum(s.naive_comparisons for s in self.steps)

    @property
    def total_generated(self) -> int:
        return sum(s.pseudoproducts for s in self.steps)

    @property
    def seconds(self) -> float:
        return sum(s.seconds for s in self.steps)

    @property
    def max_degree(self) -> int:
        return max((s.degree for s in self.steps), default=0)


def generate_eppp(
    func: BoolFunc,
    *,
    backend: str = "index",
    discard_equal: bool = True,
    max_pseudoproducts: int | None = None,
    on_limit: str = "raise",
    budget: Budget | None = None,
) -> EpppResult:
    """Generate the EPPP candidate set of ``func``.

    Pseudoproducts are subsets of the *care* set (on ∪ dc), so
    don't-cares enlarge them exactly as in SP minimization; the covering
    step later only targets the on-set.

    ``max_pseudoproducts`` bounds the total number of distinct
    pseudoproducts generated across all degrees, enforced *within*
    steps (one degree level of an XOR-rich function can produce tens of
    millions of unions).  When exceeded, ``on_limit="raise"`` aborts
    with :class:`GenerationBudgetExceeded`; ``on_limit="stop"`` returns
    every pseudoproduct seen so far (still a sound cover superset —
    every discarded pseudoproduct's coverer was kept — but no longer
    guaranteed to contain a minimum-literal cover; the result is
    flagged ``truncated``).

    ``budget`` is a cooperative :class:`~repro.budget.Budget`, ticked
    per union row from inside the pairing loops: a blown deadline or a
    cancellation raises :class:`repro.errors.BudgetExceeded` /
    :class:`repro.errors.Cancelled` promptly even mid-step (the
    generation's explosive phase), on any thread.
    """
    if on_limit not in ("raise", "stop"):
        raise ValueError(f"unknown on_limit {on_limit!r}")
    if backend == "index":
        return _generate_fast(
            func, discard_equal, max_pseudoproducts, on_limit, budget
        )
    if backend == "trie":
        return _generate_generic(
            func, discard_equal, max_pseudoproducts, on_limit, budget
        )
    raise ValueError(f"unknown store backend {backend!r}")


# ----------------------------------------------------------------------
# Fast path: dict-of-dicts buckets, per-delta caching (index backend)
# ----------------------------------------------------------------------

def _basis_literals(n: int, basis: tuple[int, ...]) -> int:
    """Literal count of any pseudocube with this direction basis."""
    return sum(b.bit_count() - 1 for b in basis) + (n - len(basis))


def _generate_fast(
    func: BoolFunc,
    discard_equal: bool,
    max_pseudoproducts: int | None,
    on_limit: str,
    budget: Budget | None = None,
) -> EpppResult:
    n = func.n
    # bucket: basis -> {anchor: None}; degree-0 basis is ().
    buckets: dict[tuple[int, ...], dict[int, None]] = {
        (): {p: None for p in sorted(func.care_set)}
    }
    # Equal child bases arrive from independent insert_vector calls;
    # interning makes the next_buckets probes identity-hits and keeps
    # one tuple per distinct basis across the whole generation.
    interner = BasisInterner()
    result = EpppResult(n, [])
    degree = 0
    total = len(buckets[()])
    budget_left = None if max_pseudoproducts is None else max_pseudoproducts - total
    # XOR-rich groups regenerate the same union 2^{k+1}-1 times; those
    # duplicates do not count toward the distinct-pseudoproduct budget,
    # so bound the raw union work as well (per step).
    comparison_cap = (
        0 if max_pseudoproducts is None else 8 * max_pseudoproducts
    )

    while buckets:
        t0 = time.perf_counter()
        next_buckets: dict[tuple[int, ...], dict[int, None]] = {}
        comparisons = 0
        duplicates = 0
        generated = 0
        size = sum(len(b) for b in buckets.values())
        retained: list[Pseudocube] = []
        overflow = False

        for basis, anchors in buckets.items():
            anchor_list = list(anchors)
            g = len(anchor_list)
            if g < 2:
                retained.extend(Pseudocube._unsafe(n, a, basis) for a in anchor_list)
                continue
            parent_literals = _basis_literals(n, basis)
            # delta -> (child basis, reduced delta, its pivot bit, covers parents?)
            delta_cache: dict[int, tuple[tuple[int, ...], int, int, bool]] = {}
            covered: set[int] = set()
            for i in range(g - 1):
                if budget is not None:
                    # One tick per union in this row keeps cancellation
                    # latency bounded even inside a single huge group.
                    budget.tick(g - 1 - i)
                ai = anchor_list[i]
                for j in range(i + 1, g):
                    aj = anchor_list[j]
                    delta = ai ^ aj
                    info = delta_cache.get(delta)
                    if info is None:
                        child_basis = interner.intern(
                            gf2.insert_vector(basis, delta)
                        )
                        # Anchors are zero on the parent pivots, hence so
                        # is delta: it is already reduced modulo `basis`.
                        reduced = delta
                        pivot_bit = reduced & -reduced
                        child_literals = _basis_literals(n, child_basis)
                        covers = child_literals < parent_literals or (
                            discard_equal and child_literals == parent_literals
                        )
                        info = (child_basis, reduced, pivot_bit, covers)
                        delta_cache[delta] = info
                    child_basis, reduced, pivot_bit, covers = info
                    # New anchor: parents share it; one conditional XOR.
                    anchor = ai ^ reduced if ai & pivot_bit else ai
                    comparisons += 1
                    target = next_buckets.get(child_basis)
                    if target is None:
                        next_buckets[child_basis] = {anchor: None}
                        generated += 1
                    elif anchor in target:
                        duplicates += 1
                    else:
                        target[anchor] = None
                        generated += 1
                    if covers:
                        covered.add(ai)
                        covered.add(aj)
                if budget_left is not None and (
                    generated > budget_left or comparisons > comparison_cap
                ):
                    overflow = True
                    break
            if overflow:
                break
            retained.extend(
                Pseudocube._unsafe(n, a, basis)
                for a in anchor_list
                if a not in covered
            )

        if overflow:
            if on_limit == "raise":
                raise GenerationBudgetExceeded(
                    f"generated more than {max_pseudoproducts} pseudoproducts"
                )
            # Keep everything seen at this degree and below: sound
            # superset (every discarded pseudoproduct's coverer kept).
            for basis, anchors in buckets.items():
                result.eppps.extend(
                    Pseudocube._unsafe(n, a, basis) for a in anchors
                )
            for basis, anchors in next_buckets.items():
                result.eppps.extend(
                    Pseudocube._unsafe(n, a, basis) for a in anchors
                )
            result.truncated = True
            result.steps.append(
                StepStats(
                    degree=degree,
                    pseudoproducts=size,
                    groups=len(buckets),
                    comparisons=comparisons,
                    naive_comparisons=size * (size - 1) // 2,
                    generated=generated,
                    duplicates=duplicates,
                    retained=size,
                    seconds=time.perf_counter() - t0,
                )
            )
            return result

        result.eppps.extend(retained)
        result.steps.append(
            StepStats(
                degree=degree,
                pseudoproducts=size,
                groups=len(buckets),
                comparisons=comparisons,
                naive_comparisons=size * (size - 1) // 2,
                generated=generated,
                duplicates=duplicates,
                retained=len(retained),
                seconds=time.perf_counter() - t0,
            )
        )
        total += generated
        if budget_left is not None:
            budget_left = max_pseudoproducts - total
        buckets = next_buckets
        degree += 1
    return result


# ----------------------------------------------------------------------
# Generic path: any store exposing insert/groups/items (trie backend)
# ----------------------------------------------------------------------

def _generate_generic(
    func: BoolFunc,
    discard_equal: bool,
    max_pseudoproducts: int | None,
    on_limit: str,
    budget: Budget | None = None,
) -> EpppResult:
    store = make_store("trie")
    for p in sorted(func.care_set):
        store.insert(Pseudocube.from_point(func.n, p))

    result = EpppResult(func.n, [])
    degree = 0
    total = len(store)
    budget_left = None if max_pseudoproducts is None else max_pseudoproducts - total
    comparison_cap = 0 if max_pseudoproducts is None else 8 * max_pseudoproducts
    while len(store):
        t0 = time.perf_counter()
        next_store = make_store("trie")
        covered: set[Pseudocube] = set()
        comparisons = 0
        duplicates = 0
        groups = 0
        size = len(store)
        overflow = False
        for group in store.groups(budget=budget):
            g = len(group)
            groups += 1
            if g < 2:
                continue
            parent_literals = group[0].num_literals
            for i in range(g - 1):
                if budget is not None:
                    budget.tick(g - 1 - i)
                gi = group[i]
                for j in range(i + 1, g):
                    gj = group[j]
                    union = gi.union(gj)
                    comparisons += 1
                    if not next_store.insert(union):
                        duplicates += 1
                    child_literals = union.num_literals
                    if child_literals < parent_literals or (
                        discard_equal and child_literals == parent_literals
                    ):
                        covered.add(gi)
                        covered.add(gj)
                if budget_left is not None and (
                    len(next_store) > budget_left or comparisons > comparison_cap
                ):
                    overflow = True
                    break
            if overflow:
                break
        if overflow:
            if on_limit == "raise":
                raise GenerationBudgetExceeded(
                    f"generated more than {max_pseudoproducts} pseudoproducts"
                )
            result.eppps.extend(store.items())
            result.eppps.extend(next_store.items())
            result.truncated = True
            result.steps.append(
                StepStats(
                    degree=degree,
                    pseudoproducts=size,
                    groups=groups,
                    comparisons=comparisons,
                    naive_comparisons=size * (size - 1) // 2,
                    generated=len(next_store),
                    duplicates=duplicates,
                    retained=size,
                    seconds=time.perf_counter() - t0,
                )
            )
            return result
        retained = [pc for pc in store.items() if pc not in covered]
        result.eppps.extend(retained)
        result.steps.append(
            StepStats(
                degree=degree,
                pseudoproducts=size,
                groups=groups,
                comparisons=comparisons,
                naive_comparisons=size * (size - 1) // 2,
                generated=len(next_store),
                duplicates=duplicates,
                retained=len(retained),
                seconds=time.perf_counter() - t0,
            )
        )
        total += len(next_store)
        if budget_left is not None:
            budget_left = max_pseudoproducts - total
            if budget_left < 0:
                if on_limit == "raise":
                    raise GenerationBudgetExceeded(
                        f"generated {total} pseudoproducts "
                        f"(limit {max_pseudoproducts})"
                    )
                result.eppps.extend(next_store.items())
                result.truncated = True
                return result
        store = next_store
        degree += 1
    return result
