"""Joint multi-output SPP minimization with pseudoproduct sharing.

The paper minimizes each output separately ("the different outputs of
each function have been minimized separately"), which this library's
:func:`~repro.minimize.exact.minimize_spp` reproduces.  In a PLA-style
realization, however, a pseudoproduct feeding several outputs is built
*once*; this module implements that extension as a tagged covering
problem:

* candidates — the union of the per-output EPPP sets, each tagged with
  every output whose care set contains it;
* rows — all ``(output, on-point)`` pairs;
* cost — the candidate's literal count, paid once no matter how many
  outputs it drives.

The result reports both the shared cost (hardware view) and the
per-output forms (each verified against its specification).
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.boolfunc.function import MultiBoolFunc
from repro.core.pseudocube import Pseudocube
from repro.core.spp_form import SppForm
from repro.kernels import coverage_masks
from repro.minimize import covering as cov
from repro.minimize.cost import literal_cost
from repro.minimize.eppp import generate_eppp

__all__ = ["MultiSppResult", "minimize_spp_multi"]


@dataclass
class MultiSppResult:
    """Outcome of a joint multi-output minimization."""

    forms: tuple[SppForm, ...]
    shared_pseudoproducts: tuple[Pseudocube, ...]
    shared_literals: int
    covering_optimal: bool
    seconds: float
    # Mincov reduction report for the shared covering step.
    covering_stats: dict | None = None

    @property
    def total_output_literals(self) -> int:
        """Literal count if every output paid for its own copies
        (the separate-minimization accounting)."""
        return sum(form.num_literals for form in self.forms)


def _candidate_tags(
    func: MultiBoolFunc,
    candidates: dict[Pseudocube, set[int]],
) -> None:
    """Extend each candidate's output tag with every output whose care
    set contains it (a pseudoproduct found for one output is often valid
    for siblings).

    Containment is a popcount check on the kernel masks: a pseudocube
    lies inside a care set iff its care-row mask has ``len(pc)`` bits.
    """
    cands = list(candidates)
    sizes = [len(pc) for pc in cands]
    for o, fo in enumerate(func.outputs):
        masks = coverage_masks(sorted(fo.care_set), cands)
        for pc, mask, size in zip(cands, masks, sizes):
            tag = candidates[pc]
            if o not in tag and mask.bit_count() == size:
                tag.add(o)


def minimize_spp_multi(
    func: MultiBoolFunc,
    *,
    backend: str = "index",
    covering: str = "greedy",
    cost: Callable[[Pseudocube], int] = literal_cost,
    max_pseudoproducts: int | None = None,
) -> MultiSppResult:
    """Jointly minimize all outputs of ``func`` with shared terms."""
    t0 = time.perf_counter()
    candidates: dict[Pseudocube, set[int]] = {}
    for o, fo in enumerate(func.outputs):
        if not fo.on_set:
            continue
        generation = generate_eppp(
            fo,
            backend=backend,
            max_pseudoproducts=max_pseudoproducts,
            on_limit="stop",
        )
        for pc in generation.eppps:
            candidates.setdefault(pc, set()).add(o)
    _candidate_tags(func, candidates)

    # Rows are all (output, on-point) pairs laid out contiguously per
    # output, so the tagged candidate's global mask is the OR of its
    # per-output kernel masks shifted by the output's row offset.
    rows_per_output = [sorted(fo.on_set) for fo in func.outputs]
    offsets: list[int] = []
    num_rows = 0
    for rows_o in rows_per_output:
        offsets.append(num_rows)
        num_rows += len(rows_o)

    tagged = list(candidates.items())
    cands = [pc for pc, _ in tagged]
    out_masks = [coverage_masks(rows_o, cands) for rows_o in rows_per_output]

    global_masks: list[int] = []
    for i, (_, tag) in enumerate(tagged):
        mask = 0
        for o in tag:
            mask |= out_masks[o][i] << offsets[o]
        global_masks.append(mask)

    problem = cov.problem_from_masks(
        num_rows, global_masks, [cost(pc) for pc in cands], tagged
    )
    solution = cov.solve(problem, mode=covering)

    index_of = {id(item): i for i, item in enumerate(tagged)}
    selected = solution.payloads
    shared = tuple(pc for pc, _ in selected)
    forms = []
    for o, fo in enumerate(func.outputs):
        members = [
            item[0]
            for item in selected
            if o in item[1] and out_masks[o][index_of[id(item)]]
        ]
        members = _drop_redundant_for_output(members, fo.on_set)
        forms.append(SppForm(func.n, tuple(members)))
    return MultiSppResult(
        forms=tuple(forms),
        shared_pseudoproducts=shared,
        shared_literals=sum(cost(pc) for pc in shared),
        covering_optimal=solution.optimal,
        seconds=time.perf_counter() - t0,
        covering_stats=(
            solution.stats.as_dict() if solution.stats is not None else None
        ),
    )


def _drop_redundant_for_output(
    members: list[Pseudocube], on_set: frozenset[int]
) -> list[Pseudocube]:
    """Remove pseudoproducts not needed to cover this output's on-set
    (a shared term may have been selected for a sibling output only)."""
    rows = sorted(on_set)
    universe = (1 << len(rows)) - 1
    mask_of = {
        id(pc): mask for pc, mask in zip(members, coverage_masks(rows, members))
    }
    kept = list(members)
    for pc in sorted(members, key=lambda pc: -pc.num_literals):
        others = [q for q in kept if q is not pc]
        rest = 0
        for q in others:
            rest |= mask_of[id(q)]
        if rest == universe:
            kept = others
    return kept
