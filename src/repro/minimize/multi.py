"""Joint multi-output SPP minimization with pseudoproduct sharing.

The paper minimizes each output separately ("the different outputs of
each function have been minimized separately"), which this library's
:func:`~repro.minimize.exact.minimize_spp` reproduces.  In a PLA-style
realization, however, a pseudoproduct feeding several outputs is built
*once*; this module implements that extension as a tagged covering
problem:

* candidates — the union of the per-output EPPP sets, each tagged with
  every output whose care set contains it;
* rows — all ``(output, on-point)`` pairs;
* cost — the candidate's literal count, paid once no matter how many
  outputs it drives.

The result reports both the shared cost (hardware view) and the
per-output forms (each verified against its specification).
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.boolfunc.function import MultiBoolFunc
from repro.core.pseudocube import Pseudocube
from repro.core.spp_form import SppForm
from repro.minimize import covering as cov
from repro.minimize.cost import literal_cost
from repro.minimize.eppp import generate_eppp

__all__ = ["MultiSppResult", "minimize_spp_multi"]


@dataclass
class MultiSppResult:
    """Outcome of a joint multi-output minimization."""

    forms: tuple[SppForm, ...]
    shared_pseudoproducts: tuple[Pseudocube, ...]
    shared_literals: int
    covering_optimal: bool
    seconds: float

    @property
    def total_output_literals(self) -> int:
        """Literal count if every output paid for its own copies
        (the separate-minimization accounting)."""
        return sum(form.num_literals for form in self.forms)


def _candidate_tags(
    func: MultiBoolFunc,
    candidates: dict[Pseudocube, set[int]],
) -> None:
    """Extend each candidate's output tag with every output whose care
    set contains it (a pseudoproduct found for one output is often valid
    for siblings)."""
    care_sets = [fo.care_set for fo in func.outputs]
    for pc, tag in candidates.items():
        points = list(pc.points())
        for o, care in enumerate(care_sets):
            if o in tag:
                continue
            if all(p in care for p in points):
                tag.add(o)


def minimize_spp_multi(
    func: MultiBoolFunc,
    *,
    backend: str = "index",
    covering: str = "greedy",
    cost: Callable[[Pseudocube], int] = literal_cost,
    max_pseudoproducts: int | None = None,
) -> MultiSppResult:
    """Jointly minimize all outputs of ``func`` with shared terms."""
    t0 = time.perf_counter()
    candidates: dict[Pseudocube, set[int]] = {}
    for o, fo in enumerate(func.outputs):
        if not fo.on_set:
            continue
        generation = generate_eppp(
            fo,
            backend=backend,
            max_pseudoproducts=max_pseudoproducts,
            on_limit="stop",
        )
        for pc in generation.eppps:
            candidates.setdefault(pc, set()).add(o)
    _candidate_tags(func, candidates)

    rows: list[tuple[int, int]] = []
    on_sets = [fo.on_set for fo in func.outputs]
    for o, on in enumerate(on_sets):
        rows.extend((o, p) for p in sorted(on))

    tagged = list(candidates.items())

    def covered_rows_of(item: tuple[Pseudocube, set[int]]):
        pc, tag = item
        for o in tag:
            on = on_sets[o]
            for p in pc.points():
                if p in on:
                    yield (o, p)

    problem = cov.build_covering(
        rows,
        tagged,
        covered_rows_of=covered_rows_of,
        cost_of=lambda item: cost(item[0]),
    )
    solution = cov.solve(problem, mode=covering)

    selected = solution.payloads
    shared = tuple(pc for pc, _ in selected)
    forms = []
    for o, fo in enumerate(func.outputs):
        members = [
            pc
            for pc, tag in selected
            if o in tag and any(p in fo.on_set for p in pc.points())
        ]
        members = _drop_redundant_for_output(members, fo.on_set)
        forms.append(SppForm(func.n, tuple(members)))
    return MultiSppResult(
        forms=tuple(forms),
        shared_pseudoproducts=shared,
        shared_literals=sum(cost(pc) for pc in shared),
        covering_optimal=solution.optimal,
        seconds=time.perf_counter() - t0,
    )


def _drop_redundant_for_output(
    members: list[Pseudocube], on_set: frozenset[int]
) -> list[Pseudocube]:
    """Remove pseudoproducts not needed to cover this output's on-set
    (a shared term may have been selected for a sibling output only)."""
    kept = list(members)
    for pc in sorted(members, key=lambda pc: -pc.num_literals):
        others = [q for q in kept if q is not pc]
        covered = set()
        for q in others:
            covered.update(q.points())
        if on_set <= covered:
            kept = others
    return kept
