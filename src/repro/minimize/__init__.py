"""Minimization algorithms: Algorithm 2 (exact), Algorithm 3 (SPP_k),
the naive baseline of [5], the SP baseline, and set covering."""

from repro.minimize.aox import AoxForm, AoxResult, minimize_aox
from repro.minimize.bounded import minimize_spp_bounded
from repro.minimize.covering import (
    CoveringProblem,
    CoveringSolution,
    build_covering,
    solve,
    solve_exact,
    solve_greedy,
)
from repro.minimize.eppp import (
    EpppResult,
    GenerationBudgetExceeded,
    StepStats,
    generate_eppp,
)
from repro.minimize.exact import SppResult, minimize_spp
from repro.minimize.heuristic import HeuristicStats, minimize_spp_k
from repro.minimize.mincov import ReducedCore, ReductionStats, reduce_problem
from repro.minimize.naive import generate_eppp_naive
from repro.minimize.qm import Cube, prime_implicants
from repro.minimize.sp import SpResult, minimize_sp

__all__ = [
    "AoxForm",
    "AoxResult",
    "CoveringProblem",
    "CoveringSolution",
    "Cube",
    "EpppResult",
    "GenerationBudgetExceeded",
    "HeuristicStats",
    "ReducedCore",
    "ReductionStats",
    "SpResult",
    "SppResult",
    "StepStats",
    "build_covering",
    "generate_eppp",
    "generate_eppp_naive",
    "minimize_aox",
    "minimize_sp",
    "minimize_spp",
    "minimize_spp_bounded",
    "minimize_spp_k",
    "prime_implicants",
    "reduce_problem",
    "solve",
    "solve_exact",
    "solve_greedy",
]
