"""Structural analysis of functions and their pseudoproduct lattices.

Utilities for the quantities Section 3.3 of the paper reasons about:
how pseudoproducts distribute over degrees and structures, and how much
work the partition-trie grouping saves over the naive all-pairs
comparison (``Σ_j |X_j|²/2`` vs ``|X|²/2`` per step).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.boolfunc.function import BoolFunc
from repro.core.spp_form import SppForm
from repro.minimize.eppp import EpppResult, generate_eppp

__all__ = [
    "GenerationProfile",
    "generation_profile",
    "comparison_savings",
    "structure_census",
    "form_profile",
    "FormProfile",
]


@dataclass(frozen=True)
class GenerationProfile:
    """Summary of one EPPP generation run."""

    n: int
    degrees: int
    total_pseudoproducts: int
    total_eppps: int
    total_comparisons: int
    total_naive_comparisons: int
    peak_level_size: int
    peak_level_degree: int

    @property
    def savings_factor(self) -> float:
        """How many times fewer comparisons grouping needed (§3.3)."""
        if self.total_comparisons == 0:
            return 1.0
        return self.total_naive_comparisons / self.total_comparisons


def generation_profile(
    func: BoolFunc,
    *,
    max_pseudoproducts: int | None = None,
) -> GenerationProfile:
    """Run Algorithm 2's generation and summarize its shape."""
    result = generate_eppp(
        func,
        max_pseudoproducts=max_pseudoproducts,
        on_limit="stop" if max_pseudoproducts else "raise",
    )
    return profile_of(result)


def profile_of(result: EpppResult) -> GenerationProfile:
    """Summarize an existing :class:`EpppResult`."""
    peak = max(result.steps, key=lambda s: s.pseudoproducts)
    return GenerationProfile(
        n=result.n,
        degrees=len(result.steps),
        total_pseudoproducts=result.total_generated,
        total_eppps=len(result.eppps),
        total_comparisons=result.total_comparisons,
        total_naive_comparisons=result.total_naive_comparisons,
        peak_level_size=peak.pseudoproducts,
        peak_level_degree=peak.degree,
    )


def comparison_savings(func: BoolFunc) -> float:
    """The §3.3 savings factor for ``func`` (≥ 1)."""
    return generation_profile(func).savings_factor


def structure_census(func: BoolFunc) -> dict[int, tuple[int, int]]:
    """Per-degree ``(pseudoproducts, structure classes)`` counts.

    The ratio of the two is what Section 3.3's speedup rests on: with
    ``k`` classes of sizes ``|X_1| … |X_k|``, grouped generation costs
    ``Σ |X_j|²/2`` against the naive ``|X|²/2``.
    """
    result = generate_eppp(func)
    census: dict[int, tuple[int, int]] = {}
    for step in result.steps:
        census[step.degree] = (step.pseudoproducts, step.groups)
    return census


@dataclass(frozen=True)
class FormProfile:
    """Gate-level statistics of an SPP form (three-level network view)."""

    num_pseudoproducts: int
    num_literals: int
    num_exor_factors: int
    num_exor_gates: int  # factors with ≥ 2 literals (1-literal = wire)
    max_factor_width: int
    max_product_fanin: int
    degree_histogram: dict[int, int]

    @property
    def is_two_level(self) -> bool:
        """True when the form degenerates to SP (no real EXOR gates)."""
        return self.num_exor_gates == 0


def form_profile(form: SppForm) -> FormProfile:
    """Gate statistics of a synthesized form."""
    from repro.core.cex import cex_of

    exor_gates = 0
    max_width = 0
    max_fanin = 0
    histogram: dict[int, int] = {}
    total_factors = 0
    for pc in form.pseudoproducts:
        cex = cex_of(pc)
        histogram[pc.degree] = histogram.get(pc.degree, 0) + 1
        max_fanin = max(max_fanin, cex.num_factors)
        total_factors += cex.num_factors
        for factor in cex.factors:
            width = factor.num_literals
            max_width = max(max_width, width)
            if width >= 2:
                exor_gates += 1
    return FormProfile(
        num_pseudoproducts=form.num_pseudoproducts,
        num_literals=form.num_literals,
        num_exor_factors=total_factors,
        num_exor_gates=exor_gates,
        max_factor_width=max_width,
        max_product_fanin=max_fanin,
        degree_histogram=histogram,
    )
