"""Worker-pool scheduler: fan jobs across cores, enforce deadlines.

Batches run on a :class:`concurrent.futures.ProcessPoolExecutor` (one
task = one rung of one job).  Deadlines are enforced *inside* the
worker with ``SIGALRM`` — every minimization loop here is pure Python,
so the alarm interrupts it promptly, the worker stays healthy, and no
pool teardown is needed on an ordinary timeout.  A worker that dies
anyway (e.g. the kernel OOM killer) breaks the pool; the scheduler
rebuilds it, advances the victim one rung down the ladder, and resubmits
every in-flight task.

Degradation walk: a rung that times out, exhausts its memory budget, or
errors is abandoned and the next rung of
:func:`repro.engine.ladder.ladder_for` is submitted.  The **final**
rung (two-level SP) runs without a deadline so every job terminates
with a verified answer; the record notes ``degraded: true`` and the
rung that produced it.

``workers=0`` runs everything inline in the calling process (same
ladder, same deadline mechanism) — handy for tests and debugging.
"""

from __future__ import annotations

import contextlib
import os
import signal
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any

from repro.engine.batch import (
    SOURCE_CACHE,
    SOURCE_COMPUTED,
    SOURCE_FAILED,
    SOURCE_MANIFEST,
    BatchResult,
    JobOutcome,
    Manifest,
)
from repro.engine.cache import ResultCache
from repro.engine.job import Job
from repro.engine.ladder import Rung, execute_rung, ladder_for

__all__ = ["DeadlineExceeded", "run_batch", "parallel_map"]


class DeadlineExceeded(Exception):
    """A rung ran past its per-attempt deadline."""


@contextlib.contextmanager
def _deadline(seconds: float | None):
    """Raise :class:`DeadlineExceeded` in this thread after ``seconds``.

    Uses ``SIGALRM``/``setitimer``, which only works in a process's
    main thread on POSIX; anywhere else the context degrades to a
    no-op (the ladder still protects the batch via the error path).

    The timer re-fires on an interval rather than one-shot: if the
    signal happens to be delivered while the interpreter is inside a
    frame whose exceptions are discarded as "unraisable" (a GC
    callback, a ``__del__``), the raise is silently dropped — the next
    firing delivers it in a normal frame.
    """
    if not seconds or seconds <= 0:
        yield
        return

    def _on_alarm(signum, frame):
        raise DeadlineExceeded(f"deadline of {seconds}s exceeded")

    try:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
    except (ValueError, AttributeError):  # non-main thread / no SIGALRM
        yield
        return
    signal.setitimer(signal.ITIMER_REAL, seconds, min(0.05, seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@contextlib.contextmanager
def _memory_cap(megabytes: int | None):
    """Best-effort address-space cap: allocations past it raise
    :class:`MemoryError`, which the ladder turns into a degradation."""
    if not megabytes or megabytes <= 0:
        yield
        return
    try:
        import resource
    except ImportError:
        yield
        return
    soft, hard = resource.getrlimit(resource.RLIMIT_AS)
    wanted = megabytes * 1024 * 1024
    try:
        resource.setrlimit(resource.RLIMIT_AS, (wanted, hard))
    except (ValueError, OSError):
        yield
        return
    try:
        yield
    finally:
        resource.setrlimit(resource.RLIMIT_AS, (soft, hard))


def _run_rung_task(
    job: Job, rung: Rung, timeout: float | None, memory_mb: int | None
) -> dict[str, Any]:
    """One pool task: run a single rung under its budgets.

    Always returns a status dict (never raises) so pool plumbing only
    breaks when the worker process itself dies.
    """
    t0 = time.perf_counter()
    try:
        with _deadline(timeout), _memory_cap(memory_mb):
            record = execute_rung(job, rung)
        return {"status": "ok", "record": record}
    except DeadlineExceeded:
        return {"status": "timeout", "seconds": time.perf_counter() - t0}
    except MemoryError:
        return {"status": "memory", "seconds": time.perf_counter() - t0}
    except Exception as exc:  # noqa: BLE001 — report, degrade, continue
        return {
            "status": "error",
            "seconds": time.perf_counter() - t0,
            "message": f"{type(exc).__name__}: {exc}",
        }


def _make_executor(workers: int) -> ProcessPoolExecutor:
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        ctx = multiprocessing.get_context("fork")
    else:  # pragma: no cover — non-POSIX fallback
        ctx = multiprocessing.get_context()
    return ProcessPoolExecutor(max_workers=workers, mp_context=ctx)


class _Pending:
    """Mutable ladder position of one scheduled job."""

    __slots__ = ("index", "job", "ladder", "rung_idx", "attempts")

    def __init__(self, index: int, job: Job, ladder: Sequence[Rung]):
        self.index = index
        self.job = job
        self.ladder = ladder
        self.rung_idx = 0
        self.attempts: list[dict[str, Any]] = []


def run_batch(
    jobs: Sequence[Job],
    *,
    workers: int | None = None,
    timeout: float | None = None,
    memory_mb: int | None = None,
    cache: ResultCache | None = None,
    manifest: Manifest | None = None,
    resume: bool = False,
    progress: Callable[[JobOutcome], None] | None = None,
) -> BatchResult:
    """Run ``jobs`` through cache, manifest, pool and ladder.

    Resolution order per job: manifest record (when ``resume``), then
    result cache, then computation.  ``timeout`` is the per-attempt
    deadline; each ladder rung gets the full budget and the final rung
    runs unbounded so the batch always terminates.  Duplicate jobs
    (equal content hashes) are computed once and served to the
    followers from the cache.

    ``workers=None`` uses ``os.cpu_count()``; ``workers=0`` runs inline.
    """
    t_start = time.perf_counter()
    if workers is None:
        workers = os.cpu_count() or 1
    if cache is None:
        cache = ResultCache(max_entries=2 * len(jobs) + 16)

    outcomes: dict[int, JobOutcome] = {}
    to_run: list[_Pending] = []
    followers: dict[str, list[int]] = {}
    scheduled: dict[str, _Pending] = {}

    def finish(index: int, job: Job, record, source, attempts=()) -> None:
        outcome = JobOutcome(job, record, source, list(attempts))
        outcomes[index] = outcome
        if progress is not None:
            progress(outcome)

    for index, job in enumerate(jobs):
        key = job.content_hash
        if resume and manifest is not None:
            record = manifest.load(key)
            if record is not None:
                finish(index, job, record, SOURCE_MANIFEST)
                continue
        record = cache.get(key)
        if record is not None:
            if manifest is not None:
                manifest.store(key, record)
            finish(index, job, record, SOURCE_CACHE)
            continue
        if key in scheduled:
            followers.setdefault(key, []).append(index)
            continue
        pending = _Pending(index, job, ladder_for(job))
        scheduled[key] = pending
        to_run.append(pending)

    def resolve(pending: _Pending, record, *, failed_message: str | None = None) -> None:
        """Terminal state for a scheduled job (+ its duplicate followers)."""
        key = pending.job.content_hash
        if record is not None:
            record["degraded"] = pending.rung_idx > 0
            if record["degraded"]:
                record["optimal"] = False
            record["attempts"] = pending.attempts
            cache.put(key, record)
            if manifest is not None:
                manifest.store(key, record)
            finish(pending.index, pending.job, record, SOURCE_COMPUTED, pending.attempts)
        else:
            attempts = list(pending.attempts)
            if failed_message:
                attempts.append({"status": "failed", "message": failed_message})
            finish(pending.index, pending.job, None, SOURCE_FAILED, attempts)
        for follower_index in followers.get(key, ()):
            follower_record = cache.get(key) if record is not None else None
            source = SOURCE_CACHE if follower_record is not None else SOURCE_FAILED
            finish(follower_index, jobs[follower_index], follower_record, source)

    def rung_timeout(pending: _Pending) -> float | None:
        # The last rung is the never-fails floor: no deadline.
        if pending.rung_idx >= len(pending.ladder) - 1:
            return None
        return timeout

    if workers == 0:
        for pending in to_run:
            _run_inline(pending, timeout, memory_mb, resolve)
    else:
        _run_pooled(to_run, workers, timeout, memory_mb, rung_timeout, resolve)

    result = BatchResult(
        outcomes=[outcomes[i] for i in sorted(outcomes)],
        seconds=time.perf_counter() - t_start,
        cache_stats=cache.stats,
    )
    if manifest is not None:
        manifest.write_summary(result)
    return result


def _run_inline(
    pending: _Pending,
    timeout: float | None,
    memory_mb: int | None,
    resolve: Callable[..., None],
) -> None:
    while True:
        last = pending.rung_idx >= len(pending.ladder) - 1
        rung = pending.ladder[pending.rung_idx]
        result = _run_rung_task(
            pending.job, rung, None if last else timeout, memory_mb
        )
        if result["status"] == "ok":
            resolve(pending, result["record"])
            return
        pending.attempts.append(
            {
                "rung": rung.name,
                "status": result["status"],
                "seconds": round(result.get("seconds", 0.0), 3),
                **({"message": result["message"]} if "message" in result else {}),
            }
        )
        if last:
            resolve(pending, None, failed_message=result.get("message"))
            return
        pending.rung_idx += 1


def _run_pooled(
    to_run: list[_Pending],
    workers: int,
    timeout: float | None,
    memory_mb: int | None,
    rung_timeout: Callable[[_Pending], float | None],
    resolve: Callable[..., None],
) -> None:
    executor = _make_executor(workers)
    in_flight: dict[Future, _Pending] = {}

    def submit(pending: _Pending) -> None:
        rung = pending.ladder[pending.rung_idx]
        future = executor.submit(
            _run_rung_task, pending.job, rung, rung_timeout(pending), memory_mb
        )
        in_flight[future] = pending

    def advance(pending: _Pending, status: str, seconds: float, message=None) -> None:
        rung = pending.ladder[pending.rung_idx]
        attempt = {"rung": rung.name, "status": status, "seconds": round(seconds, 3)}
        if message:
            attempt["message"] = message
        pending.attempts.append(attempt)
        if pending.rung_idx >= len(pending.ladder) - 1:
            resolve(pending, None, failed_message=message)
        else:
            pending.rung_idx += 1
            submit(pending)

    try:
        for pending in to_run:
            submit(pending)
        while in_flight:
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in done:
                pending = in_flight.pop(future)
                try:
                    result = future.result()
                except BrokenProcessPool:
                    # The worker died hard (OOM kill, segfault).  The pool
                    # is unusable and every in-flight task was lost:
                    # rebuild, demote the victim one rung, resubmit peers.
                    survivors = list(in_flight.values())
                    in_flight.clear()
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = _make_executor(workers)
                    advance(pending, "crash", 0.0, "worker process died")
                    for peer in survivors:
                        submit(peer)
                    continue
                except Exception as exc:  # pickling/plumbing failure
                    advance(pending, "error", 0.0, f"{type(exc).__name__}: {exc}")
                    continue
                if result["status"] == "ok":
                    resolve(pending, result["record"])
                else:
                    advance(
                        pending,
                        result["status"],
                        result.get("seconds", 0.0),
                        result.get("message"),
                    )
    finally:
        executor.shutdown(wait=False, cancel_futures=True)


def parallel_map(
    fn: Callable[..., Any],
    items: Iterable[Any],
    *,
    workers: int | None = None,
    star: bool = False,
) -> list[Any]:
    """Order-preserving parallel map over a process pool.

    The escape hatch for batch work that is not a single minimization
    job (e.g. Table 2's naive-vs-Algorithm-2 timing races): ``fn`` must
    be picklable (a module-level callable).  ``workers in (0, 1)`` or a
    single item runs inline.  ``star=True`` unpacks each item as
    positional arguments.
    """
    items = list(items)
    if workers is None:
        workers = os.cpu_count() or 1
    if workers <= 1 or len(items) <= 1:
        return [fn(*item) if star else fn(item) for item in items]
    executor = _make_executor(min(workers, len(items)))
    try:
        futures = [
            executor.submit(fn, *item) if star else executor.submit(fn, item)
            for item in items
        ]
        return [f.result() for f in futures]
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
