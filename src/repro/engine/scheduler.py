"""Worker-pool scheduler: fan jobs across cores, enforce deadlines.

Batches run on a :class:`concurrent.futures.ProcessPoolExecutor` (one
task = one rung of one job).  Deadlines are enforced **cooperatively**:
every attempt runs under a :class:`repro.budget.Budget` whose deadline
is checked from inside the minimization inner loops, so a runaway rung
stops promptly on any thread and any platform.  ``SIGALRM`` remains as
a main-thread *backstop* (it can interrupt code paths that predate the
budget instrumentation), no longer the sole mechanism — in particular,
``workers=0`` inline runs now honour deadlines even when invoked from a
non-main thread, e.g. a ``repro serve`` request handler.

Degradation walk: a rung that times out, exhausts its memory budget, or
errors is abandoned and the next rung of
:func:`repro.engine.ladder.ladder_for` is submitted.  The **final**
rung (two-level SP) runs without a deadline so every job terminates
with a verified answer; the record notes ``degraded: true`` and the
rung that produced it.

Crash supervision: a worker that dies hard (kernel OOM killer,
segfault, an injected ``os._exit``) breaks the whole pool, and the pool
cannot say *which* task killed it.  The scheduler rebuilds the pool and
puts every in-flight job on **probation**: each runs alone, so a repeat
crash is unambiguously that job's.  Solo crashes are retried at the
same rung with capped exponential backoff and counted; a job that
reaches ``crash_cap`` solo crashes is **quarantined** — terminal
outcome ``quarantined``, full attempt log — so one poison job can
never wedge the batch in an endless rebuild loop, and its innocent
peers no longer lose ladder rungs to crashes they didn't cause.

``workers=0`` runs everything inline in the calling process (same
ladder, same deadline mechanism) — handy for tests and debugging.
Instrumented fault sites (``scheduler.rung_start``, ``batch.job_done``)
let :mod:`repro.faults` provoke all of the above on demand.
"""

from __future__ import annotations

import contextlib
import os
import signal
import time
from collections import deque
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any

from repro import faults
from repro.budget import Budget
from repro.engine.batch import (
    SOURCE_CACHE,
    SOURCE_CANCELLED,
    SOURCE_COMPUTED,
    SOURCE_FAILED,
    SOURCE_MANIFEST,
    SOURCE_QUARANTINED,
    BatchResult,
    JobOutcome,
    Manifest,
)
from repro.engine.cache import ResultCache
from repro.engine.job import Job
from repro.engine.ladder import Rung, execute_rung, ladder_for
from repro.errors import BudgetExceeded, Cancelled, IntegrityError

__all__ = ["DeadlineExceeded", "run_batch", "parallel_map"]

# Ceiling for the capped exponential crash-retry backoff (seconds).
_BACKOFF_CAP = 2.0


class DeadlineExceeded(Exception):
    """A rung ran past its per-attempt deadline."""


@contextlib.contextmanager
def _deadline(seconds: float | None):
    """Raise :class:`DeadlineExceeded` in this thread after ``seconds``.

    Uses ``SIGALRM``/``setitimer``, which only works in a process's
    main thread on POSIX; anywhere else the context degrades to a
    no-op.  Since the cooperative :class:`repro.budget.Budget` checks
    landed in the minimization inner loops, this is only a *backstop*
    for uninstrumented code paths — off-main-thread and non-POSIX runs
    are fully covered by the budget.

    The timer re-fires on an interval rather than one-shot: if the
    signal happens to be delivered while the interpreter is inside a
    frame whose exceptions are discarded as "unraisable" (a GC
    callback, a ``__del__``), the raise is silently dropped — the next
    firing delivers it in a normal frame.
    """
    if not seconds or seconds <= 0:
        yield
        return

    def _on_alarm(signum, frame):
        raise DeadlineExceeded(f"deadline of {seconds}s exceeded")

    try:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
    except (ValueError, AttributeError):  # non-main thread / no SIGALRM
        yield
        return
    signal.setitimer(signal.ITIMER_REAL, seconds, min(0.05, seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@contextlib.contextmanager
def _memory_cap(megabytes: int | None):
    """Best-effort address-space cap: allocations past it raise
    :class:`MemoryError`, which the ladder turns into a degradation."""
    if not megabytes or megabytes <= 0:
        yield
        return
    try:
        import resource
    except ImportError:
        yield
        return
    soft, hard = resource.getrlimit(resource.RLIMIT_AS)
    wanted = megabytes * 1024 * 1024
    try:
        resource.setrlimit(resource.RLIMIT_AS, (wanted, hard))
    except (ValueError, OSError):
        yield
        return
    try:
        yield
    finally:
        resource.setrlimit(resource.RLIMIT_AS, (soft, hard))


def _run_rung_task(
    job: Job,
    rung: Rung,
    timeout: float | None,
    memory_mb: int | None,
    budget: Budget | None = None,
    capture: Callable[..., None] | None = None,
) -> dict[str, Any]:
    """One pool task: run a single rung under its budgets.

    Always returns a status dict (never raises) so pool plumbing only
    breaks when the worker process itself dies.

    The attempt always runs under a cooperative budget: the per-attempt
    ``timeout``/``memory_mb`` allowance, tightened by (and sharing the
    cancel token of) the caller's ``budget`` when one is given — so an
    overall request deadline or a cancellation wins over the attempt's
    own allowance.  ``SIGALRM`` stays armed as a main-thread backstop.
    """
    t0 = time.perf_counter()
    if budget is not None:
        attempt = budget.child(seconds=timeout, memory_mb=memory_mb)
    elif timeout is not None or memory_mb:
        attempt = Budget(seconds=timeout, memory_mb=memory_mb)
    else:
        attempt = None
    try:
        with _deadline(timeout), _memory_cap(memory_mb):
            # Inside the deadline on purpose: an injected "slow" fault
            # must be interruptible, exactly like a slow real rung.
            faults.maybe_fire(
                "scheduler.rung_start", label=job.label, rung=rung.name,
                budget=attempt,
            )
            record = execute_rung(job, rung, budget=attempt, capture=capture)
        return {"status": "ok", "record": record}
    except Cancelled as exc:
        return {
            "status": "cancelled",
            "seconds": time.perf_counter() - t0,
            "message": str(exc),
        }
    except BudgetExceeded as exc:
        status = "memory" if exc.reason == "memory" else "timeout"
        return {"status": status, "seconds": time.perf_counter() - t0}
    except DeadlineExceeded:
        return {"status": "timeout", "seconds": time.perf_counter() - t0}
    except MemoryError:
        return {"status": "memory", "seconds": time.perf_counter() - t0}
    except IntegrityError as exc:
        # A rung produced a wrong cover (or a mismatched certificate):
        # record the structured counterexamples — serving layers surface
        # them in error bodies — and degrade to the next rung like any
        # other per-attempt failure.
        return {
            "status": "integrity",
            "seconds": time.perf_counter() - t0,
            "message": str(exc),
            "detail": exc.detail,
        }
    except Exception as exc:  # noqa: BLE001 — report, degrade, continue
        return {
            "status": "error",
            "seconds": time.perf_counter() - t0,
            "message": f"{type(exc).__name__}: {exc}",
        }


def _make_executor(workers: int) -> ProcessPoolExecutor:
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        ctx = multiprocessing.get_context("fork")
    else:  # pragma: no cover — non-POSIX fallback
        ctx = multiprocessing.get_context()
    return ProcessPoolExecutor(max_workers=workers, mp_context=ctx)


class _Pending:
    """Mutable ladder position of one scheduled job."""

    __slots__ = ("index", "job", "ladder", "rung_idx", "attempts", "crashes")

    def __init__(self, index: int, job: Job, ladder: Sequence[Rung]):
        self.index = index
        self.job = job
        self.ladder = ladder
        self.rung_idx = 0
        self.attempts: list[dict[str, Any]] = []
        self.crashes = 0  # attributed (solo) worker crashes


def run_batch(
    jobs: Sequence[Job],
    *,
    workers: int | None = None,
    timeout: float | None = None,
    memory_mb: int | None = None,
    cache: ResultCache | None = None,
    manifest: Manifest | None = None,
    resume: bool = False,
    progress: Callable[[JobOutcome], None] | None = None,
    crash_cap: int = 3,
    retry_backoff: float = 0.1,
    budget: Budget | None = None,
    rung_gate: Callable[[Job, Rung], bool] | None = None,
    delta_index=None,
) -> BatchResult:
    """Run ``jobs`` through cache, manifest, pool and ladder.

    Resolution order per job: manifest record (when ``resume``), then
    result cache, then computation.  ``timeout`` is the per-attempt
    deadline; each ladder rung gets the full budget and the final rung
    runs unbounded so the batch always terminates.  Duplicate jobs
    (equal content hashes) are computed once and their followers are
    handed the resolved record directly.

    ``crash_cap`` bounds attributed worker crashes per job before it is
    quarantined (terminal outcome ``quarantined``); ``retry_backoff``
    seeds the capped exponential sleep (``backoff · 2^k``, ≤ 2 s)
    before a crash retry.

    ``budget`` is an *overall* cooperative budget for the whole call
    (deadline / memory ceiling / cancel token).  Unlike the per-attempt
    ``timeout`` — which degrades a rung and keeps the job alive — an
    exhausted or cancelled overall budget **terminates**: remaining
    jobs resolve with source ``"cancelled"`` instead of walking further
    down the ladder, bounding the caller's latency (the contract
    ``repro serve`` relies on).  In the inline path the budget's cancel
    token is honoured from inside the minimizer loops, so cancellation
    from another thread lands within a few thousand ticks; the pooled
    path checks it between task completions.

    ``rung_gate(job, rung)`` may veto individual rungs (return False to
    skip — used by the serving layer's per-rung circuit breaker and
    rung caps).  The final rung is never gated when every earlier rung
    was skipped, so a gated job still terminates with an answer.

    ``workers=None`` uses ``os.cpu_count()``; ``workers=0`` runs inline.

    ``delta_index`` is an optional :class:`repro.delta.DeltaIndex`: a
    cache-missed exact job is first offered to the near-duplicate warm
    path (:func:`repro.delta.warm_record_for` — patch the base context,
    re-solve covering, full verify + certificate) before being
    scheduled cold; contexts are captured from completed exact rungs on
    the inline path (workers=0), where the minimizer result shares the
    caller's address space.
    """
    t_start = time.perf_counter()
    if workers is None:
        workers = os.cpu_count() or 1
    if cache is None:
        cache = ResultCache(max_entries=2 * len(jobs) + 16)

    outcomes: dict[int, JobOutcome] = {}
    to_run: list[_Pending] = []
    followers: dict[str, list[int]] = {}
    scheduled: dict[str, _Pending] = {}

    def finish(index: int, job: Job, record, source, attempts=()) -> None:
        outcome = JobOutcome(job, record, source, list(attempts))
        outcomes[index] = outcome
        if progress is not None:
            progress(outcome)
        # Fires after the outcome (and any manifest record) is durable:
        # a "crash" here simulates dying between jobs, the resume case.
        faults.maybe_fire("batch.job_done", label=job.display_label)

    for index, job in enumerate(jobs):
        key = job.content_hash
        if resume and manifest is not None:
            record = manifest.load(key)
            if record is not None:
                finish(index, job, record, SOURCE_MANIFEST)
                continue
        record = cache.get(key, func=job.func)
        if record is not None:
            if manifest is not None:
                manifest.store(key, record)
            finish(index, job, record, SOURCE_CACHE)
            continue
        if key in scheduled:
            followers.setdefault(key, []).append(index)
            continue
        if delta_index is not None and job.method == "exact":
            from repro.delta import warm_record_for  # lazy: optional subsystem

            warm = None
            try:
                warm = warm_record_for(job, delta_index, budget=budget)
            except BudgetExceeded:
                pass  # let the normal path resolve the job as cancelled
            if warm is not None:
                warm["degraded"] = False
                warm["attempts"] = []
                cache.put(key, warm)
                if manifest is not None:
                    manifest.store(key, warm)
                finish(index, job, warm, SOURCE_COMPUTED)
                continue
        pending = _Pending(index, job, ladder_for(job))
        scheduled[key] = pending
        to_run.append(pending)

    def resolve(
        pending: _Pending,
        record,
        *,
        failed_message: str | None = None,
        source: str = SOURCE_FAILED,
    ) -> None:
        """Terminal state for a scheduled job (+ its duplicate followers)."""
        key = pending.job.content_hash
        if record is not None:
            record["degraded"] = pending.rung_idx > 0
            if record["degraded"]:
                record["optimal"] = False
            record["attempts"] = pending.attempts
            cache.put(key, record)
            if manifest is not None:
                manifest.store(key, record)
            finish(pending.index, pending.job, record, SOURCE_COMPUTED, pending.attempts)
        else:
            attempts = list(pending.attempts)
            if failed_message:
                attempts.append({"status": "failed", "message": failed_message})
            finish(pending.index, pending.job, None, source, attempts)
        for follower_index in followers.get(key, ()):
            # Hand followers the resolved record directly — re-fetching
            # through the cache inflated hit/miss stats and raced LRU
            # eviction into a spurious failure.
            follower_source = SOURCE_CACHE if record is not None else source
            finish(follower_index, jobs[follower_index], record, follower_source)

    def rung_timeout(pending: _Pending) -> float | None:
        # The last rung is the never-fails floor: no deadline.
        if pending.rung_idx >= len(pending.ladder) - 1:
            return None
        return timeout

    def quarantine(pending: _Pending) -> None:
        resolve(
            pending,
            None,
            failed_message=(
                f"quarantined after {pending.crashes} worker crashes "
                f"(cap {crash_cap})"
            ),
            source=SOURCE_QUARANTINED,
        )

    if workers == 0:
        capture = delta_index.observe if delta_index is not None else None
        for pending in to_run:
            if pending.index in outcomes:
                continue  # resolved early by a budget termination
            _run_inline(
                pending, timeout, memory_mb, resolve,
                budget=budget, rung_gate=rung_gate, capture=capture,
            )
            if budget is not None and (budget.cancelled or budget.expired()):
                _cancel_remaining(to_run, outcomes, resolve, budget)
                break
    else:
        _run_pooled(
            to_run, workers, timeout, memory_mb, rung_timeout, resolve,
            quarantine, crash_cap, retry_backoff,
            budget=budget, rung_gate=rung_gate,
        )

    result = BatchResult(
        outcomes=[outcomes[i] for i in sorted(outcomes)],
        seconds=time.perf_counter() - t_start,
        cache_stats=cache.stats,
    )
    if manifest is not None:
        manifest.write_summary(result)
    return result


def _apply_gate(
    pending: _Pending, rung_gate: Callable[[Job, Rung], bool] | None
) -> None:
    """Skip gated rungs, recording each skip; never gates the last rung."""
    if rung_gate is None:
        return
    while pending.rung_idx < len(pending.ladder) - 1:
        rung = pending.ladder[pending.rung_idx]
        if rung_gate(pending.job, rung):
            return
        pending.attempts.append(
            {"rung": rung.name, "status": "skipped", "seconds": 0.0}
        )
        pending.rung_idx += 1


def _cancel_remaining(
    to_run: Iterable[_Pending],
    outcomes: dict[int, JobOutcome],
    resolve: Callable[..., None],
    budget: Budget,
) -> None:
    """Resolve every not-yet-finished job as cancelled/budget-terminated."""
    if budget.cancelled:
        message = f"cancelled: {budget.token.reason}"
    else:
        message = "overall budget exhausted"
    for pending in to_run:
        if pending.index not in outcomes:
            resolve(
                pending, None,
                failed_message=message, source=SOURCE_CANCELLED,
            )


def _run_inline(
    pending: _Pending,
    timeout: float | None,
    memory_mb: int | None,
    resolve: Callable[..., None],
    budget: Budget | None = None,
    rung_gate: Callable[[Job, Rung], bool] | None = None,
    capture: Callable[..., None] | None = None,
) -> None:
    while True:
        # Overall budget gone → terminate instead of degrading further.
        # Both exhaustion and cancellation end the job with source
        # "cancelled"; the attempt log explains which one it was.
        if budget is not None:
            try:
                budget.check()
            except BudgetExceeded as exc:
                resolve(
                    pending, None,
                    failed_message=str(exc), source=SOURCE_CANCELLED,
                )
                return
        _apply_gate(pending, rung_gate)
        last = pending.rung_idx >= len(pending.ladder) - 1
        rung = pending.ladder[pending.rung_idx]
        result = _run_rung_task(
            pending.job, rung, None if last else timeout, memory_mb,
            budget=budget, capture=capture,
        )
        if result["status"] == "ok":
            resolve(pending, result["record"])
            return
        pending.attempts.append(
            {
                "rung": rung.name,
                "status": result["status"],
                "seconds": round(result.get("seconds", 0.0), 3),
                **({"message": result["message"]} if "message" in result else {}),
                **({"detail": result["detail"]} if "detail" in result else {}),
            }
        )
        if result["status"] == "cancelled" or (
            budget is not None and (budget.cancelled or budget.expired())
        ):
            # The *overall* budget is gone (a mere per-attempt timeout
            # would leave it intact) — stop walking the ladder.
            resolve(
                pending, None,
                failed_message=result.get("message"),
                source=SOURCE_CANCELLED,
            )
            return
        if last:
            resolve(pending, None, failed_message=result.get("message"))
            return
        pending.rung_idx += 1


def _run_pooled(
    to_run: list[_Pending],
    workers: int,
    timeout: float | None,
    memory_mb: int | None,
    rung_timeout: Callable[[_Pending], float | None],
    resolve: Callable[..., None],
    quarantine: Callable[[_Pending], None],
    crash_cap: int,
    retry_backoff: float,
    budget: Budget | None = None,
    rung_gate: Callable[[Job, Rung], bool] | None = None,
) -> None:
    """Pooled execution with crash supervision.

    Three job pools: ``ready`` (submit whenever the pool is healthy),
    ``probation`` (crash suspects, run strictly one at a time for
    unambiguous attribution), and ``in_flight``.  A broken pool sends
    every in-flight job to probation; a job that crashes **solo** gets
    a counted crash, a backoff sleep, and a same-rung retry until
    ``crash_cap``, then quarantine.  Termination: every probation run
    either resolves a job, advances a rung (≤ ladder length per job),
    or counts a crash (≤ ``crash_cap`` per job), and ambiguous breaks
    only arise from normal mode, which probation always drains.

    The overall ``budget`` is checked between submissions and waits —
    *coarse* cancellation, because the cancel token cannot cross the
    process boundary (workers rebuild per-attempt budgets from the
    picklable ``timeout``/``memory_mb`` args).  On expiry or cancel,
    in-flight futures are abandoned and every unresolved job resolves
    as ``cancelled``.  Latency is bounded by one rung attempt, which
    ``timeout`` itself bounds except on the final rung.
    """
    executor = _make_executor(workers)
    in_flight: dict[Future, _Pending] = {}
    ready: deque[_Pending] = deque(to_run)
    probation: deque[_Pending] = deque()

    def budget_blown() -> bool:
        return budget is not None and (budget.cancelled or budget.expired())

    def terminate() -> None:
        remaining = [*in_flight.values(), *ready, *probation]
        for future in in_flight:
            future.cancel()
        in_flight.clear()
        ready.clear()
        probation.clear()
        if budget.cancelled:
            message = f"cancelled: {budget.token.reason}"
        else:
            message = "overall budget exhausted"
        for pending in remaining:
            resolve(pending, None, failed_message=message, source=SOURCE_CANCELLED)

    def handle_break(first_victim: _Pending) -> None:
        """Pool died: rebuild it, triage every lost job."""
        nonlocal executor
        victims = [first_victim, *in_flight.values()]
        in_flight.clear()
        executor.shutdown(wait=False, cancel_futures=True)
        executor = _make_executor(workers)
        solo = len(victims) == 1
        for victim in victims:
            rung = victim.ladder[victim.rung_idx]
            victim.attempts.append(
                {
                    "rung": rung.name,
                    "status": "crash",
                    "seconds": 0.0,
                    "message": "worker process died"
                    + ("" if solo else " (peer suspect)"),
                }
            )
            if solo:
                # Alone in the pool — the crash is unambiguously its.
                victim.crashes += 1
            if victim.crashes >= crash_cap:
                quarantine(victim)
            else:
                probation.append(victim)

    def try_submit(pending: _Pending) -> bool:
        _apply_gate(pending, rung_gate)
        rung = pending.ladder[pending.rung_idx]
        try:
            future = executor.submit(
                _run_rung_task, pending.job, rung, rung_timeout(pending), memory_mb
            )
        except BrokenProcessPool:
            # The pool broke under our feet (race with an unobserved
            # worker death): triage this job with whatever was in flight.
            handle_break(pending)
            return False
        in_flight[future] = pending
        return True

    def advance(pending: _Pending, status: str, seconds: float, message=None,
                detail=None) -> None:
        rung = pending.ladder[pending.rung_idx]
        attempt = {"rung": rung.name, "status": status, "seconds": round(seconds, 3)}
        if message:
            attempt["message"] = message
        if detail:
            attempt["detail"] = detail
        pending.attempts.append(attempt)
        if pending.rung_idx >= len(pending.ladder) - 1:
            resolve(pending, None, failed_message=message)
        else:
            pending.rung_idx += 1
            ready.append(pending)

    try:
        while ready or probation or in_flight:
            if budget_blown():
                terminate()
                return
            if not in_flight and probation:
                suspect = probation.popleft()
                if retry_backoff > 0 and suspect.crashes > 0:
                    time.sleep(
                        min(
                            retry_backoff * (2 ** (suspect.crashes - 1)),
                            _BACKOFF_CAP,
                        )
                    )
                try_submit(suspect)
            elif not probation:
                while ready:
                    if not try_submit(ready.popleft()):
                        break
            if not in_flight:
                continue  # submission failed or probation re-queued
            # With an overall budget, poll so a deadline or cancel is
            # noticed even while every worker is deep in a rung.
            poll = 0.05 if budget is not None else None
            done, _ = wait(in_flight, timeout=poll, return_when=FIRST_COMPLETED)
            for future in done:
                pending = in_flight.pop(future)
                try:
                    result = future.result()
                except BrokenProcessPool:
                    # The worker died hard (OOM kill, segfault, injected
                    # os._exit).  Everything in flight was lost with it.
                    handle_break(pending)
                    break  # in_flight was cleared — re-enter the loop
                except Exception as exc:  # pickling/plumbing failure
                    advance(pending, "error", 0.0, f"{type(exc).__name__}: {exc}")
                    continue
                if result["status"] == "ok":
                    resolve(pending, result["record"])
                else:
                    advance(
                        pending,
                        result["status"],
                        result.get("seconds", 0.0),
                        result.get("message"),
                        result.get("detail"),
                    )
    finally:
        executor.shutdown(wait=False, cancel_futures=True)


def parallel_map(
    fn: Callable[..., Any],
    items: Iterable[Any],
    *,
    workers: int | None = None,
    star: bool = False,
) -> list[Any]:
    """Order-preserving parallel map over a process pool.

    The escape hatch for batch work that is not a single minimization
    job (e.g. Table 2's naive-vs-Algorithm-2 timing races): ``fn`` must
    be picklable (a module-level callable).  ``workers in (0, 1)`` or a
    single item runs inline.  ``star=True`` unpacks each item as
    positional arguments.

    A broken pool (a worker killed hard) does not propagate a raw
    :class:`BrokenProcessPool` out of a ``tables`` run: the items lost
    with the pool are recomputed inline in the calling process, where a
    genuine error in ``fn`` surfaces as itself.
    """
    items = list(items)
    if workers is None:
        workers = os.cpu_count() or 1
    if workers <= 1 or len(items) <= 1:
        return [fn(*item) if star else fn(item) for item in items]
    executor = _make_executor(min(workers, len(items)))
    results: list[Any] = [None] * len(items)
    lost: list[int] = []
    try:
        futures: dict[Future, int] = {}
        broken = False
        for i, item in enumerate(items):
            if broken:
                lost.append(i)
                continue
            try:
                future = executor.submit(fn, *item) if star else executor.submit(fn, item)
            except BrokenProcessPool:
                broken = True
                lost.append(i)
                continue
            futures[future] = i
        for future, i in futures.items():
            try:
                results[i] = future.result()
            except BrokenProcessPool:
                lost.append(i)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
    for i in sorted(lost):
        item = items[i]
        results[i] = fn(*item) if star else fn(item)
    return results
