"""The degradation ladder: what to run when the ideal rung won't fit.

EPPP generation is exactly the step the paper warns explodes on hard
functions, and exact covering is NP-hard on top of it.  When a rung
blows its deadline or memory budget, the scheduler walks down this
ladder, trading optimality for a guaranteed answer:

    exact SPP  →  bounded (2-SPP)  →  heuristic SPP_0  →  two-level SP

Every rung below the top yields a *verified but non-optimal* cover; the
rung that produced the answer is recorded in the result so downstream
consumers (tables, manifests) can star degraded cells.  The final SP
rung is cheap (Quine–McCluskey + greedy covering) and serves as the
never-fails floor — a two-level form always exists.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.budget import Budget
from repro.engine.job import _SOLVER_VERSION, Job, job_to_dict
from repro.errors import IntegrityError
from repro.integrity import VERIFIED_FULL, make_certificate, report_to_dict
from repro.minimize.bounded import minimize_spp_bounded
from repro.minimize.exact import minimize_spp
from repro.minimize.heuristic import minimize_spp_k
from repro.minimize.sp import minimize_sp
from repro.serialize import form_to_dict
from repro.verify import verify_form

__all__ = ["Rung", "ladder_for", "execute_rung", "RECORD_VERSION"]

RECORD_VERSION = 1

# Keep exact generation bounded in memory even when the caller sets no
# explicit budget: a deadline can kill a runaway rung, but only after it
# has already swallowed the worker's RAM.  A capped generation still
# yields a verified upper-bound cover (see minimize_spp).
_DEFAULT_EXACT_CAP = 2_000_000


@dataclass(frozen=True)
class Rung:
    """One step of the ladder: a method plus its fixed parameters."""

    name: str
    method: str
    params: dict[str, Any]


def ladder_for(job: Job) -> tuple[Rung, ...]:
    """The rung sequence for ``job``, most faithful first."""
    sp = Rung("sp", "sp", {})
    spp0 = Rung("heuristic-k0", "heuristic", {"k": 0})
    if job.method == "exact":
        cap = job.max_pseudoproducts
        if cap is None:
            cap = _DEFAULT_EXACT_CAP
        return (
            Rung("exact", "exact", {"max_pseudoproducts": cap}),
            Rung("bounded-2", "bounded", {"bound": 2}),
            spp0,
            sp,
        )
    if job.method == "bounded":
        return (
            Rung(f"bounded-{job.bound}", "bounded", {"bound": job.bound}),
            spp0,
            sp,
        )
    if job.method == "heuristic":
        head = Rung(f"heuristic-k{job.k}", "heuristic", {"k": job.k})
        if job.k > 0:
            return (head, spp0, sp)
        return (head, sp)
    return (sp,)


def execute_rung(
    job: Job,
    rung: Rung,
    budget: Budget | None = None,
    capture: Any = None,
) -> dict[str, Any]:
    """Run one rung of ``job`` and return a result record.

    The produced form is verified against the function before the
    record is built — a wrong answer is an error, never a result.

    ``budget`` is threaded into the minimizer's inner loops (see
    :mod:`repro.budget`); a blown deadline/ceiling or a cancellation
    propagates as :class:`repro.errors.BudgetExceeded` /
    :class:`repro.errors.Cancelled` for the scheduler to classify.

    ``capture`` is an optional ``capture(job, rung, result, record)``
    callback invoked on successful exact rungs with the in-memory
    minimizer result, before the record is returned — the hook the
    near-duplicate index (:mod:`repro.delta`) uses to snapshot reusable
    contexts.  Only honoured where the caller shares an address space
    (the scheduler threads it on the inline path); capture errors are
    swallowed, never failing the rung.
    """
    func = job.func
    t0 = time.perf_counter()
    extras: dict[str, Any] = {}
    truncated = False
    if rung.method == "sp":
        sp = minimize_sp(func, covering=job.covering, budget=budget)
        form = sp.form
        candidates = sp.num_primes
        optimal = False
        extras["num_primes"] = sp.num_primes
        if sp.covering_stats is not None:
            extras["covering"] = sp.covering_stats
    else:
        if rung.method == "exact":
            result = minimize_spp(
                func,
                backend=job.backend,
                covering=job.covering,
                max_pseudoproducts=rung.params["max_pseudoproducts"],
                on_limit="stop",
                budget=budget,
            )
            truncated = bool(result.generation and result.generation.truncated)
            optimal = result.covering_optimal and not truncated
            if result.generation is not None:
                extras["comparisons"] = result.generation.total_comparisons
        elif rung.method == "bounded":
            result = minimize_spp_bounded(
                func,
                rung.params["bound"],
                backend=job.backend,
                covering=job.covering,
                budget=budget,
            )
            optimal = False
        else:  # heuristic
            result = minimize_spp_k(
                func,
                rung.params["k"],
                backend=job.backend,
                covering=job.covering,
                budget=budget,
            )
            optimal = False
        form = result.form
        candidates = result.num_candidates
        if result.covering_stats is not None:
            extras["covering"] = result.covering_stats
    v0 = time.perf_counter()
    report = verify_form(form, func)
    verify_ms = (time.perf_counter() - v0) * 1000.0
    if not report:
        raise IntegrityError(
            f"rung {rung.name} produced a wrong cover: "
            f"misses {len(report.uncovered_on_points)} on-points, "
            f"covers {len(report.covered_off_points)} off-points"
            + (" (scan truncated)" if report.truncated else ""),
            report=report,
            detail={
                "rung": rung.name,
                "counterexamples": report_to_dict(report),
            },
        )
    certificate = make_certificate(
        func,
        form,
        solver_salt=_SOLVER_VERSION,
        claimed_cost=form.num_literals,
        verified=VERIFIED_FULL,
        verify_ms=verify_ms,
    )
    record = {
        "version": RECORD_VERSION,
        "kind": "engine_record",
        "job": job_to_dict(job),
        "rung": rung.name,
        "literals": form.num_literals,
        "pseudoproducts": form.num_pseudoproducts,
        "candidates": candidates,
        "seconds": time.perf_counter() - t0,
        "optimal": optimal,
        "truncated": truncated,
        "form": form_to_dict(form),
        "integrity": certificate,
        "extras": extras,
    }
    if capture is not None and rung.method == "exact":
        try:
            capture(job, rung, result, record)
        except Exception:  # noqa: BLE001 — snapshotting must never fail a rung
            pass
    return record
