"""Content-addressed result cache: in-memory LRU + optional disk store.

Repeated minimizations of the same function are ubiquitous — the
``tables`` command re-minimizes benchmark outputs shared between
tables, k-sweeps redo the ``k=0`` rung, and a rerun batch redoes
everything.  Records are keyed by the job content hash
(:mod:`repro.engine.job`), so a hit is guaranteed to be the same
computation.

Two tiers:

* an in-memory LRU (``max_entries``, counted per record) serving
  within-process reuse;
* an optional on-disk JSON store under ``cache_dir/objects/<h2>/<hash>.json``
  (two-level fan-out keeps directories small), serving reuse across
  processes and runs.  Disk hits are promoted into the LRU.

Disk records are written atomically (tmp + fsync + rename) with a
sha256 checksum envelope.  A record that fails to decode or verify on
read is **quarantined** — moved to ``cache_dir/quarantine/`` for
forensics — and treated as a miss, so corruption costs a recompute,
never a crash or a silently wrong answer.

All counters (hits, misses, evictions, corrupt quarantines, …) are
exposed via :class:`CacheStats` for the CLI summary and the tests.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.serialize import dump_json_file, load_json_file

__all__ = ["CacheStats", "ResultCache"]


@dataclass
class CacheStats:
    """Counters of one :class:`ResultCache` lifetime."""

    hits: int = 0        # served from the in-memory LRU
    disk_hits: int = 0   # served from the disk store
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt: int = 0     # disk records quarantined on failed load

    @property
    def total_hits(self) -> int:
        return self.hits + self.disk_hits

    def summary(self) -> str:
        text = (
            f"{self.total_hits} hits ({self.disk_hits} from disk), "
            f"{self.misses} misses, {self.evictions} evictions"
        )
        if self.corrupt:
            text += f", {self.corrupt} corrupt quarantined"
        return text


class ResultCache:
    """LRU + optional disk store for engine result records."""

    def __init__(self, max_entries: int = 4096, cache_dir: str | Path | None = None):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.stats = CacheStats()
        self._lru: OrderedDict[str, dict[str, Any]] = OrderedDict()

    # ------------------------------------------------------------------

    def path_for(self, key: str) -> Path | None:
        """Disk location of ``key`` (None when disk store is disabled)."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / "objects" / key[:2] / f"{key}.json"

    @property
    def quarantine_dir(self) -> Path | None:
        """Where corrupt disk records are moved (None when no disk tier)."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / "quarantine"

    def get(self, key: str) -> dict[str, Any] | None:
        """Look up a record; None on miss (corrupt entries quarantined)."""
        record = self._lru.get(key)
        if record is not None:
            self._lru.move_to_end(key)
            self.stats.hits += 1
            return record
        path = self.path_for(key)
        if path is not None and path.is_file():
            try:
                record = load_json_file(path)
            except ValueError:
                self._quarantine(path)
                record = None
            if record is not None:
                self.stats.disk_hits += 1
                self._insert(key, record)
                return record
        self.stats.misses += 1
        return None

    def put(self, key: str, record: dict[str, Any]) -> None:
        """Store a record under ``key`` in both tiers."""
        self._insert(key, record)
        self.stats.stores += 1
        path = self.path_for(key)
        if path is not None:
            dump_json_file(path, record, checksum=True, fsync=True, site="cache.put")

    def shrink(self, fraction: float = 0.5) -> int:
        """Evict the oldest entries, keeping ``fraction`` of the LRU.

        The memory-watchdog relief valve for long-running services:
        records stay on disk (when a disk tier is configured), so a
        shrink trades memory for re-reads, never for recomputes.
        Returns the number of entries evicted.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        keep = int(len(self._lru) * fraction)
        evicted = 0
        while len(self._lru) > keep:
            self._lru.popitem(last=False)
            self.stats.evictions += 1
            evicted += 1
        return evicted

    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, key: str) -> bool:
        return key in self._lru

    # ------------------------------------------------------------------

    def _quarantine(self, path: Path) -> None:
        """Move an unreadable record aside; never raises."""
        self.stats.corrupt += 1
        target_dir = self.quarantine_dir
        if target_dir is None:  # pragma: no cover — disk tier implies a dir
            return
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / path.name)
        except OSError:
            try:
                path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover — at worst, leave it be
                pass

    def _insert(self, key: str, record: dict[str, Any]) -> None:
        self._lru[key] = record
        self._lru.move_to_end(key)
        while len(self._lru) > self.max_entries:
            self._lru.popitem(last=False)
            self.stats.evictions += 1
