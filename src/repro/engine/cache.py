"""Content-addressed result cache: in-memory LRU + optional disk store.

Repeated minimizations of the same function are ubiquitous — the
``tables`` command re-minimizes benchmark outputs shared between
tables, k-sweeps redo the ``k=0`` rung, and a rerun batch redoes
everything.  Records are keyed by the job content hash
(:mod:`repro.engine.job`), so a hit is guaranteed to be the same
computation.

Two tiers:

* an in-memory LRU (``max_entries``, counted per record) serving
  within-process reuse;
* an optional on-disk JSON store under ``cache_dir/objects/<h2>/<hash>.json``
  (two-level fan-out keeps directories small), serving reuse across
  processes and runs.  Disk hits are promoted into the LRU.

Disk records are written atomically (tmp + fsync + rename) with a
sha256 checksum envelope.  A record that fails to decode or verify on
read is **quarantined** — moved to ``cache_dir/quarantine/`` for
forensics — and treated as a miss, so corruption costs a recompute,
never a crash or a silently wrong answer.

The disk tier may be **shared between processes** (the cluster's
workers all point at one ``cache_dir``).  Single-record writes need no
coordination — the tmp+rename protocol is atomic — but multi-file
maintenance (disk eviction with ``max_disk_entries``, quarantine moves)
is serialized through a :class:`~repro.engine.lockfile.FileLock` at
``cache_dir/.maintenance.lock`` so two workers cannot interleave a
scan-then-delete sequence.  Maintenance is best-effort: a worker that
cannot get the lock promptly skips its turn rather than stalling the
request path.

All counters (hits, misses, evictions, corrupt quarantines, …) are
exposed via :class:`CacheStats` for the CLI summary and the tests.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro import faults
from repro.engine.job import _SOLVER_VERSION
from repro.engine.lockfile import FileLock, LockTimeout
from repro.errors import IntegrityError
from repro.integrity import check_certificate
from repro.serialize import dump_json_file, form_from_dict, load_json_file

if TYPE_CHECKING:  # pragma: no cover
    from repro.boolfunc.function import BoolFunc

__all__ = ["CacheStats", "ResultCache"]


def _corrupt_payload(path: Path) -> None:
    """The ``cache.disk.corrupt_payload`` fault: checksum-valid bit-rot.

    Re-reads the just-written record, drops the last pseudoproduct of
    the stored form (so the form no longer covers its spec), and
    re-wraps a **fresh** checksum envelope before writing the file
    back.  The result decodes cleanly and passes its checksum — the
    corruption is purely semantic, the case only verify-on-read
    auditing (or a shadow verification downstream) can catch.
    """
    try:
        raw = json.loads(path.read_text(encoding="ascii"))
    except (OSError, ValueError):  # pragma: no cover — racing prune
        return
    payload = raw.get("payload") if isinstance(raw, dict) else None
    if not isinstance(payload, dict):
        payload = raw if isinstance(raw, dict) else None
    if payload is None:
        return
    form = payload.get("form")
    if not isinstance(form, dict) or not form.get("pseudoproducts"):
        return
    form["pseudoproducts"] = form["pseudoproducts"][:-1]
    dump_json_file(path, payload, checksum=True, fsync=True)


@dataclass
class CacheStats:
    """Counters of one :class:`ResultCache` lifetime."""

    hits: int = 0        # served from the in-memory LRU
    disk_hits: int = 0   # served from the disk store
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    disk_evictions: int = 0  # disk-tier records pruned by this process
    corrupt: int = 0     # disk records quarantined on failed load
    audited: int = 0     # disk loads re-verified against their spec
    audit_mismatches: int = 0  # audits that failed (record quarantined)

    @property
    def total_hits(self) -> int:
        return self.hits + self.disk_hits

    def as_dict(self) -> dict[str, int]:
        """All counters as a flat dict (the ``/stats``/``/metrics`` view)."""
        return asdict(self)

    def summary(self) -> str:
        text = (
            f"{self.total_hits} hits ({self.disk_hits} from disk), "
            f"{self.misses} misses, {self.evictions} evictions"
        )
        if self.disk_evictions:
            text += f", {self.disk_evictions} disk-pruned"
        if self.corrupt:
            text += f", {self.corrupt} corrupt quarantined"
        if self.audited:
            text += (
                f", {self.audited} audited"
                f" ({self.audit_mismatches} mismatches)"
            )
        return text


class ResultCache:
    """LRU + optional disk store for engine result records."""

    # Disk maintenance cadence: check the disk-tier size only every
    # N stores, so the steady-state put path stays a single file write.
    _PRUNE_EVERY = 64

    def __init__(
        self,
        max_entries: int = 4096,
        cache_dir: str | Path | None = None,
        *,
        max_disk_entries: int | None = None,
        audit_rate: int = 16,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        if max_disk_entries is not None and max_disk_entries < 1:
            raise ValueError("max_disk_entries must be positive")
        if audit_rate < 0:
            raise ValueError("audit_rate must be non-negative")
        self.max_entries = max_entries
        self.max_disk_entries = max_disk_entries
        self.audit_rate = audit_rate
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.stats = CacheStats()
        self._lru: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._stores_since_prune = 0
        self._audit_tick = 0

    # ------------------------------------------------------------------

    def path_for(self, key: str) -> Path | None:
        """Disk location of ``key`` (None when disk store is disabled)."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / "objects" / key[:2] / f"{key}.json"

    @property
    def quarantine_dir(self) -> Path | None:
        """Where corrupt disk records are moved (None when no disk tier)."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / "quarantine"

    def maintenance_lock(self, *, timeout: float | None = 5.0) -> FileLock | None:
        """The cross-process lock guarding multi-file disk maintenance."""
        if self.cache_dir is None:
            return None
        return FileLock(self.cache_dir / ".maintenance.lock", timeout=timeout)

    def get(self, key: str, func: "BoolFunc | None" = None) -> dict[str, Any] | None:
        """Look up a record; None on miss (corrupt entries quarantined).

        With ``func`` (the trusted specification for ``key``), disk
        loads go through **verify-on-read auditing**: every
        ``audit_rate``-th disk hit — and *every* record whose integrity
        envelope is missing or stamped with a different solver salt —
        is independently re-verified against the spec before being
        returned.  A record that fails its audit is quarantined and
        reported as a miss, so a checksum-valid but semantically wrong
        record (bit-rot inside the payload, a buggy writer) costs a
        recompute, never a wrong answer.  In-memory hits are not
        re-audited: LRU entries were either produced (and verified) by
        this process or audited when first promoted from disk.
        """
        record = self._lru.get(key)
        if record is not None:
            self._lru.move_to_end(key)
            self.stats.hits += 1
            return record
        path = self.path_for(key)
        if path is not None and path.is_file():
            try:
                record = load_json_file(path)
            except ValueError:
                self._quarantine(path)
                record = None
            if record is not None and func is not None:
                record = self._audit(path, record, func)
            if record is not None:
                self.stats.disk_hits += 1
                self._insert(key, record)
                return record
        self.stats.misses += 1
        return None

    def put(self, key: str, record: dict[str, Any]) -> None:
        """Store a record under ``key`` in both tiers."""
        self._insert(key, record)
        self.stats.stores += 1
        path = self.path_for(key)
        if path is not None:
            dump_json_file(path, record, checksum=True, fsync=True, site="cache.put")
            if faults.check("cache.disk.corrupt_payload", label=key) is not None:
                _corrupt_payload(path)
            if self.max_disk_entries is not None:
                self._stores_since_prune += 1
                if self._stores_since_prune >= self._PRUNE_EVERY:
                    self._stores_since_prune = 0
                    self.prune_disk()

    def quarantine_key(self, key: str) -> None:
        """Purge ``key`` from both tiers after a failed downstream audit.

        Shadow verification runs *after* a response went out; what it
        can still do is make sure the wrong record is never served
        again: drop the LRU entry and quarantine the disk file so the
        next request recomputes.
        """
        self._lru.pop(key, None)
        path = self.path_for(key)
        if path is not None and path.is_file():
            self._quarantine(path)

    def disk_entries(self) -> list[Path]:
        """Every record file in the disk tier (unsorted)."""
        if self.cache_dir is None:
            return []
        objects = self.cache_dir / "objects"
        if not objects.is_dir():
            return []
        return [p for p in objects.glob("*/*.json")]

    def prune_disk(self, max_entries: int | None = None) -> int:
        """Evict the oldest disk records beyond ``max_entries``.

        Serialized across processes through the maintenance lock: the
        scan-then-delete sequence must not interleave with another
        worker's prune, or both could count the same survivors and
        delete past the cap.  A busy lock (another worker is already
        pruning) makes this a no-op — the cap is enforced either way.
        Returns the number of records removed by *this* call.
        """
        limit = self.max_disk_entries if max_entries is None else max_entries
        if self.cache_dir is None or limit is None:
            return 0
        lock = self.maintenance_lock(timeout=0.0)
        if not lock.try_acquire():
            return 0
        try:
            entries = self.disk_entries()
            excess = len(entries) - limit
            if excess <= 0:
                return 0
            # Oldest-mtime first; a record re-written by put() refreshes
            # its mtime, so recency survives process churn well enough.
            def mtime(path: Path) -> float:
                try:
                    return path.stat().st_mtime
                except OSError:  # raced with a concurrent quarantine
                    return 0.0

            removed = 0
            for path in sorted(entries, key=mtime)[:excess]:
                try:
                    path.unlink(missing_ok=True)
                    removed += 1
                except OSError:  # pragma: no cover — best-effort
                    continue
            self.stats.disk_evictions += removed
            return removed
        finally:
            lock.release()

    def shrink(self, fraction: float = 0.5) -> int:
        """Evict the oldest entries, keeping ``fraction`` of the LRU.

        The memory-watchdog relief valve for long-running services:
        records stay on disk (when a disk tier is configured), so a
        shrink trades memory for re-reads, never for recomputes.
        Returns the number of entries evicted.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        keep = int(len(self._lru) * fraction)
        evicted = 0
        while len(self._lru) > keep:
            self._lru.popitem(last=False)
            self.stats.evictions += 1
            evicted += 1
        return evicted

    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, key: str) -> bool:
        return key in self._lru

    # ------------------------------------------------------------------

    def _audit(
        self, path: Path, record: dict[str, Any], func: "BoolFunc"
    ) -> dict[str, Any] | None:
        """Verify-on-read: maybe re-check a disk record against its spec.

        Sampling is a simple round-robin over disk loads (every
        ``audit_rate``-th; ``audit_rate=1`` audits everything, ``0``
        disables sampling), but a record whose envelope is missing or
        carries a stale solver salt is **always** audited — those are
        exactly the records whose producer this build cannot vouch for.
        Returns the record (envelope refreshed) or None after
        quarantining a failed audit.
        """
        cert = record.get("integrity")
        stale = cert is None or cert.get("solver_salt") != _SOLVER_VERSION
        self._audit_tick += 1
        sampled = self.audit_rate > 0 and self._audit_tick % self.audit_rate == 0
        if not stale and not sampled:
            return record
        self.stats.audited += 1
        try:
            form = form_from_dict(record["form"])
            refreshed = check_certificate(
                record, func, form, expected_salt=_SOLVER_VERSION
            )
        except IntegrityError:
            self.stats.audit_mismatches += 1
            self._quarantine(path)
            return None
        except (KeyError, TypeError, ValueError):
            # Record shape too mangled to even extract a form: same
            # treatment as a failed checksum.
            self.stats.audit_mismatches += 1
            self._quarantine(path)
            return None
        record["integrity"] = refreshed
        return record

    def _quarantine(self, path: Path) -> None:
        """Move an unreadable record aside; never raises.

        Taken under the maintenance lock so a quarantine move cannot
        interleave with another worker's prune scan of the same files;
        if the lock is busy (or times out) the move proceeds anyway —
        ``os.replace`` of a single file is atomic, and a concurrent
        prune racing it at worst double-counts one unlinked record.
        """
        self.stats.corrupt += 1
        target_dir = self.quarantine_dir
        if target_dir is None:  # pragma: no cover — disk tier implies a dir
            return
        lock = self.maintenance_lock(timeout=1.0)
        locked = False
        try:
            try:
                lock.acquire()
                locked = True
            except LockTimeout:
                pass
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / path.name)
        except OSError:
            try:
                path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover — at worst, leave it be
                pass
        finally:
            if locked:
                lock.release()

    def _insert(self, key: str, record: dict[str, Any]) -> None:
        self._lru[key] = record
        self._lru.move_to_end(key)
        while len(self._lru) > self.max_entries:
            self._lru.popitem(last=False)
            self.stats.evictions += 1
