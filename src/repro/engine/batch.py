"""Batch results and the on-disk manifest that makes them resumable.

A batch over the full paper tables is CPU-hours of work; an interrupted
run must not start over.  The :class:`Manifest` persists one JSON
record per completed job under ``<root>/jobs/<hash>.json`` (written
atomically with a checksum envelope), mirrors every completion into an
append-only ``events.jsonl`` journal, and writes a human-readable
``manifest.json`` summary.  A rerun with ``resume=True`` loads
completed hashes and skips their jobs.

Crash safety: per-job files are tmp+fsync+rename so a killed run never
leaves a half-written record; a record that nevertheless fails to
decode or verify is quarantined to ``<root>/quarantine/`` and the
journal serves as its fallback.  The journal itself is append-only, so
a ``kill -9`` mid-append can truncate at most its **final line** —
:meth:`Manifest.replay` tolerates exactly that (and skips any interior
line that fails its checksum).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.engine.cache import CacheStats
from repro.engine.job import Job
from repro.serialize import (
    canonical_dumps,
    checksum_of,
    dump_json_file,
    load_json_file,
)

__all__ = [
    "JobOutcome",
    "BatchResult",
    "Manifest",
    "SOURCE_CANCELLED",
]

# How an outcome's record was obtained.
SOURCE_COMPUTED = "computed"
SOURCE_CACHE = "cache"
SOURCE_MANIFEST = "manifest"
SOURCE_FAILED = "failed"
SOURCE_QUARANTINED = "quarantined"
SOURCE_CANCELLED = "cancelled"


@dataclass
class JobOutcome:
    """Terminal state of one job in a batch."""

    job: Job
    record: dict[str, Any] | None
    source: str
    attempts: list[dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.record is not None

    @property
    def rung(self) -> str | None:
        return self.record.get("rung") if self.record else None

    @property
    def degraded(self) -> bool:
        return bool(self.record and self.record.get("degraded"))

    @property
    def literals(self) -> int | None:
        return self.record.get("literals") if self.record else None


@dataclass
class BatchResult:
    """All outcomes of one :func:`repro.engine.scheduler.run_batch` call."""

    outcomes: list[JobOutcome]
    seconds: float = 0.0
    cache_stats: CacheStats | None = None

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    def by_source(self, source: str) -> list[JobOutcome]:
        return [o for o in self.outcomes if o.source == source]

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for o in self.outcomes:
            counts[o.source] = counts.get(o.source, 0) + 1
        if any(o.degraded for o in self.outcomes):
            counts["degraded"] = sum(1 for o in self.outcomes if o.degraded)
        return counts

    def summary(self) -> str:
        parts = [f"{len(self.outcomes)} jobs"]
        parts.extend(f"{v} {k}" for k, v in sorted(self.counts().items()))
        parts.append(f"{self.seconds:.2f}s wall")
        return ", ".join(parts)


class Manifest:
    """Per-job JSON records + append-only journal; the resume index."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.journal_path = self.root / "events.jsonl"
        self.quarantine_dir = self.root / "quarantine"
        self.corrupt_records = 0   # per-job files quarantined on load
        self.journal_skipped = 0   # journal lines dropped by replay
        self._replay_cache: dict[str, dict[str, Any]] | None = None

    def path_for(self, key: str) -> Path:
        return self.jobs_dir / f"{key}.json"

    def load(self, key: str) -> dict[str, Any] | None:
        """The completed record for ``key``, or None.

        A corrupt per-job file is quarantined and the journal consulted
        as a fallback before giving up (→ recompute).
        """
        path = self.path_for(key)
        if path.is_file():
            try:
                return load_json_file(path)
            except ValueError:
                self._quarantine(path)
        return self.replay().get(key)

    def store(self, key: str, record: dict[str, Any]) -> None:
        dump_json_file(
            self.path_for(key), record,
            checksum=True, fsync=True, site="manifest.store",
        )
        self._append_journal(key, record)

    def completed_keys(self) -> set[str]:
        keys = set(self.replay())
        if self.jobs_dir.is_dir():
            keys.update(p.stem for p in self.jobs_dir.glob("*.json"))
        return keys

    # -- journal -------------------------------------------------------

    def _append_journal(self, key: str, record: dict[str, Any]) -> None:
        from repro import faults

        line = canonical_dumps(
            {"key": key, "record": record, "sha256": checksum_of(record)}
        )
        line = faults.mangle("manifest.journal", line)
        self.root.mkdir(parents=True, exist_ok=True)
        fd = os.open(
            self.journal_path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644
        )
        try:
            os.write(fd, (line + "\n").encode("ascii"))
            os.fsync(fd)
        finally:
            os.close(fd)
        if self._replay_cache is not None:
            self._replay_cache[key] = record

    def replay(self) -> dict[str, dict[str, Any]]:
        """Rebuild ``key → record`` from the journal.

        Tolerates a truncated final line (the only damage an append-only
        file can suffer from a hard kill) and skips any line whose JSON
        or checksum does not verify, counting them in
        ``journal_skipped`` instead of raising.
        """
        if self._replay_cache is not None:
            return self._replay_cache
        records: dict[str, dict[str, Any]] = {}
        if self.journal_path.is_file():
            import json

            raw = self.journal_path.read_bytes().decode("ascii", errors="replace")
            lines = raw.split("\n")
            # A well-formed journal ends with "\n": the final split piece
            # is empty.  Anything else is a torn tail — parse it anyway;
            # if it fails it counts as skipped like any bad line.
            for line in lines:
                if not line.strip():
                    continue
                try:
                    event = json.loads(line)
                    record = event["record"]
                    if event.get("sha256") != checksum_of(record):
                        raise ValueError("journal checksum mismatch")
                    records[event["key"]] = record
                except (ValueError, KeyError, TypeError):
                    self.journal_skipped += 1
        self._replay_cache = records
        return records

    def _quarantine(self, path: Path) -> None:
        """Move an unreadable per-job record aside; never raises."""
        self.corrupt_records += 1
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / path.name)
        except OSError:  # pragma: no cover — at worst, leave it be
            pass

    def write_summary(self, result: BatchResult) -> None:
        """Write ``manifest.json`` describing the batch as a whole."""
        dump_json_file(
            self.root / "manifest.json",
            fsync=True,
            site="manifest.summary",
            obj={
                "version": 1,
                "kind": "engine_manifest",
                "jobs": [
                    {
                        "hash": o.job.content_hash,
                        "label": o.job.label,
                        "source": o.source,
                        "rung": o.rung,
                        "degraded": o.degraded,
                        "literals": o.literals,
                        "attempts": o.attempts,
                    }
                    for o in result.outcomes
                ],
                "seconds": result.seconds,
                "counts": result.counts(),
            },
        )
