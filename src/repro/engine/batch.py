"""Batch results and the on-disk manifest that makes them resumable.

A batch over the full paper tables is CPU-hours of work; an interrupted
run must not start over.  The :class:`Manifest` persists one JSON
record per completed job under ``<root>/jobs/<hash>.json`` (written
atomically), plus a human-readable ``manifest.json`` summary.  A rerun
with ``resume=True`` loads completed hashes and skips their jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.engine.cache import CacheStats
from repro.engine.job import Job
from repro.serialize import dump_json_file, load_json_file

__all__ = ["JobOutcome", "BatchResult", "Manifest"]

# How an outcome's record was obtained.
SOURCE_COMPUTED = "computed"
SOURCE_CACHE = "cache"
SOURCE_MANIFEST = "manifest"
SOURCE_FAILED = "failed"


@dataclass
class JobOutcome:
    """Terminal state of one job in a batch."""

    job: Job
    record: dict[str, Any] | None
    source: str
    attempts: list[dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.record is not None

    @property
    def rung(self) -> str | None:
        return self.record.get("rung") if self.record else None

    @property
    def degraded(self) -> bool:
        return bool(self.record and self.record.get("degraded"))

    @property
    def literals(self) -> int | None:
        return self.record.get("literals") if self.record else None


@dataclass
class BatchResult:
    """All outcomes of one :func:`repro.engine.scheduler.run_batch` call."""

    outcomes: list[JobOutcome]
    seconds: float = 0.0
    cache_stats: CacheStats | None = None

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    def by_source(self, source: str) -> list[JobOutcome]:
        return [o for o in self.outcomes if o.source == source]

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for o in self.outcomes:
            counts[o.source] = counts.get(o.source, 0) + 1
        if any(o.degraded for o in self.outcomes):
            counts["degraded"] = sum(1 for o in self.outcomes if o.degraded)
        return counts

    def summary(self) -> str:
        parts = [f"{len(self.outcomes)} jobs"]
        parts.extend(f"{v} {k}" for k, v in sorted(self.counts().items()))
        parts.append(f"{self.seconds:.2f}s wall")
        return ", ".join(parts)


class Manifest:
    """Per-job JSON records under a directory; the resume index."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"

    def path_for(self, key: str) -> Path:
        return self.jobs_dir / f"{key}.json"

    def load(self, key: str) -> dict[str, Any] | None:
        """The completed record for ``key``, or None."""
        path = self.path_for(key)
        if not path.is_file():
            return None
        try:
            return load_json_file(path)
        except ValueError:
            return None  # half-written or corrupt: recompute

    def store(self, key: str, record: dict[str, Any]) -> None:
        dump_json_file(self.path_for(key), record)

    def completed_keys(self) -> set[str]:
        if not self.jobs_dir.is_dir():
            return set()
        return {p.stem for p in self.jobs_dir.glob("*.json")}

    def write_summary(self, result: BatchResult) -> None:
        """Write ``manifest.json`` describing the batch as a whole."""
        dump_json_file(
            self.root / "manifest.json",
            {
                "version": 1,
                "kind": "engine_manifest",
                "jobs": [
                    {
                        "hash": o.job.content_hash,
                        "label": o.job.label,
                        "source": o.source,
                        "rung": o.rung,
                        "degraded": o.degraded,
                        "literals": o.literals,
                        "attempts": o.attempts,
                    }
                    for o in result.outcomes
                ],
                "seconds": result.seconds,
                "counts": result.counts(),
            },
        )
