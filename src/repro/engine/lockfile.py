"""Cross-process advisory file locks for shared on-disk state.

The cluster runs N worker processes over one ``cache_dir``; record
writes were already safe (same-directory tmp + ``os.replace`` is atomic
on POSIX), but *multi-file* maintenance — disk-tier eviction, moving a
corrupt record into quarantine — involves scan-then-act sequences that
two workers must not interleave.  :class:`FileLock` serializes them.

Implementation: ``os.open(O_CREAT | O_EXCL)`` on a lock path, which is
atomic on every filesystem the engine targets, with the owner's pid and
acquisition time written into the file for forensics.  Liveness over
strictness: a lock whose file is older than ``stale_after`` seconds is
broken (the owner presumably died between acquire and release — worker
crashes are an expected event here, see :mod:`repro.cluster`), so a
crashed worker can never wedge cache maintenance forever.  The guarded
operations are best-effort by design (eviction, quarantine): losing a
race after a stale break costs at worst a redundant scan, never a torn
record, because individual files are still written/renamed atomically.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

__all__ = ["FileLock", "LockTimeout"]


class LockTimeout(TimeoutError):
    """The lock could not be acquired within the caller's timeout."""


class FileLock:
    """Advisory ``O_CREAT|O_EXCL`` lockfile with stale-lock breaking.

    Usable as a context manager::

        with FileLock(cache_dir / ".maintenance.lock"):
            ...evict / quarantine...

    Not reentrant.  ``timeout=0`` means try-once; ``timeout=None``
    waits forever (modulo stale breaking, which bounds the wait by the
    previous owner's ``stale_after``).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        timeout: float | None = 10.0,
        poll_interval: float = 0.02,
        stale_after: float = 60.0,
    ) -> None:
        self.path = Path(path)
        self.timeout = timeout
        self.poll_interval = poll_interval
        self.stale_after = stale_after
        self._held = False

    # -- acquisition ---------------------------------------------------

    def try_acquire(self) -> bool:
        """One non-blocking attempt; True when the lock is now held."""
        if self._held:
            raise RuntimeError("FileLock is not reentrant")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = self._open_exclusive()
        if fd is None and self._break_if_stale():
            fd = self._open_exclusive()  # retry once after the break
        if fd is None:
            return False
        try:
            os.write(fd, f"{os.getpid()} {time.time():.3f}\n".encode("ascii"))
        finally:
            os.close(fd)
        self._held = True
        return True

    def _open_exclusive(self) -> int | None:
        try:
            return os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return None

    def acquire(self, timeout: float | None = None) -> None:
        """Block until held; raise :class:`LockTimeout` on expiry."""
        timeout = self.timeout if timeout is None else timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self.try_acquire():
            if deadline is not None and time.monotonic() >= deadline:
                raise LockTimeout(f"could not acquire {self.path} in {timeout}s")
            time.sleep(self.poll_interval)

    def release(self) -> None:
        """Drop the lock; never raises (the file may be stale-broken)."""
        if not self._held:
            return
        self._held = False
        try:
            self.path.unlink(missing_ok=True)
        except OSError:  # pragma: no cover — nothing useful left to do
            pass

    # -- staleness -----------------------------------------------------

    def _break_if_stale(self) -> bool:
        """Unlink the lock if its holder looks dead (file too old)."""
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:  # already released by the owner
            return True
        if age <= self.stale_after:
            return False
        try:  # racy by nature: at most one unlinker wins, which is fine
            self.path.unlink(missing_ok=True)
        except OSError:  # pragma: no cover
            return False
        return True

    # -- context protocol ----------------------------------------------

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    @property
    def held(self) -> bool:
        return self._held
