"""The unit of work: one minimization of one Boolean function.

A :class:`Job` pairs a :class:`~repro.boolfunc.function.BoolFunc` with
a method and its parameters, and derives a **content hash**: a SHA-256
over the canonical truth table (sorted on/dc point lists) and the
*normalized* options — only the parameters the chosen method actually
reads participate, so an exact job hashes identically no matter what
stray ``k`` or ``bound`` rode along.  The hash is the key for the
result cache and the batch manifest: two jobs with equal hashes are
guaranteed to describe the same computation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any

from repro.boolfunc.function import BoolFunc
from repro.serialize import canonical_dumps

__all__ = ["Job", "METHODS", "job_to_dict", "job_from_dict"]

METHODS = ("exact", "bounded", "heuristic", "sp")

_HASH_VERSION = 2

# Salt identifying the solver generation.  Bump whenever an algorithm
# change can alter results for identical inputs (e.g. a different
# covering heuristic), so stale cache entries from older builds are
# never served as if they came from the current solver.
_SOLVER_VERSION = "delta-4"


@dataclass(frozen=True)
class Job:
    """One minimization request.

    ``label`` is informational (progress lines, manifests) and does not
    participate in the content hash.
    """

    func: BoolFunc
    method: str = "exact"
    k: int = 0
    bound: int = 2
    covering: str = "greedy"
    backend: str = "index"
    max_pseudoproducts: int | None = None
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.method not in METHODS:
            raise ValueError(f"unknown method {self.method!r}")

    def normalized_params(self) -> dict[str, Any]:
        """The parameters the method reads, and only those."""
        params: dict[str, Any] = {"covering": self.covering}
        if self.method in ("exact", "bounded", "heuristic"):
            params["backend"] = self.backend
        if self.method == "exact":
            params["max_pseudoproducts"] = self.max_pseudoproducts
        elif self.method == "heuristic":
            params["k"] = self.k
        elif self.method == "bounded":
            params["bound"] = self.bound
        return params

    @cached_property
    def content_hash(self) -> str:
        """SHA-256 over the canonical truth table, normalized options,
        and the solver-version salt."""
        payload = canonical_dumps(
            {
                "version": _HASH_VERSION,
                "solver": _SOLVER_VERSION,
                "n": self.func.n,
                "on": sorted(self.func.on_set),
                "dc": sorted(self.func.dc_set),
                "method": self.method,
                "params": self.normalized_params(),
            }
        )
        return hashlib.sha256(payload.encode("ascii")).hexdigest()

    @property
    def display_label(self) -> str:
        return self.label or f"f(n={self.func.n},|on|={len(self.func.on_set)})"


def job_to_dict(job: Job) -> dict[str, Any]:
    """Job metadata as stored in records (without the truth table)."""
    return {
        "hash": job.content_hash,
        "label": job.label,
        "method": job.method,
        "params": job.normalized_params(),
        "n": job.func.n,
        "num_on": len(job.func.on_set),
    }


def job_from_dict(func: BoolFunc, data: dict[str, Any]) -> Job:
    """Rebuild a Job from record metadata plus its function."""
    params = data.get("params", {})
    return Job(
        func=func,
        method=data["method"],
        k=params.get("k", 0),
        bound=params.get("bound", 2),
        covering=params.get("covering", "greedy"),
        backend=params.get("backend", "index"),
        max_pseudoproducts=params.get("max_pseudoproducts"),
        label=data.get("label", ""),
    )
