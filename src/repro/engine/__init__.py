"""repro.engine — parallel batch minimization engine.

The paper's experiments are embarrassingly parallel sweeps (every
output of every benchmark, every ``k``) over minimizations that are
individually expensive and occasionally explosive (EPPP generation on
hard functions).  This package supplies the execution layer those
workloads need:

* :mod:`repro.engine.job` — a :class:`Job` describes one minimization
  (function + method + normalized params) and derives a canonical
  content hash from the truth table, so identical work is recognizable
  across entry points;
* :mod:`repro.engine.cache` — a content-addressed result cache
  (in-memory LRU + optional on-disk JSON store) with hit/miss/eviction
  counters;
* :mod:`repro.engine.ladder` — the degradation ladder
  (exact → bounded → heuristic ``SPP_0`` → two-level SP) walked when a
  rung exceeds its deadline or memory budget;
* :mod:`repro.engine.scheduler` — a worker-pool scheduler on
  :class:`concurrent.futures.ProcessPoolExecutor` that fans a batch of
  jobs across cores and enforces per-job deadlines;
* :mod:`repro.engine.batch` — per-job manifest records (atomic,
  checksummed, journal-backed) making an interrupted batch resumable
  even after a hard kill.

Failure behaviour — crash supervision, poison-job quarantine, corrupt
record quarantine — is exercised on demand through the deterministic
fault-injection hooks of :mod:`repro.faults`.
"""

from repro.engine.batch import (
    SOURCE_CACHE,
    SOURCE_CANCELLED,
    SOURCE_COMPUTED,
    SOURCE_FAILED,
    SOURCE_MANIFEST,
    SOURCE_QUARANTINED,
    BatchResult,
    JobOutcome,
    Manifest,
)
from repro.engine.cache import CacheStats, ResultCache
from repro.engine.job import Job, job_from_dict, job_to_dict
from repro.engine.ladder import Rung, execute_rung, ladder_for
from repro.engine.lockfile import FileLock, LockTimeout
from repro.engine.scheduler import DeadlineExceeded, parallel_map, run_batch

__all__ = [
    "BatchResult",
    "CacheStats",
    "DeadlineExceeded",
    "FileLock",
    "Job",
    "LockTimeout",
    "JobOutcome",
    "Manifest",
    "ResultCache",
    "Rung",
    "SOURCE_CACHE",
    "SOURCE_CANCELLED",
    "SOURCE_COMPUTED",
    "SOURCE_FAILED",
    "SOURCE_MANIFEST",
    "SOURCE_QUARANTINED",
    "execute_rung",
    "job_from_dict",
    "job_to_dict",
    "ladder_for",
    "parallel_map",
    "run_batch",
]
